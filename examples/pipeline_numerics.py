"""Pipeline parallelism with real numerics: staged execution equals
monolithic execution bit for bit.

Run:
    python examples/pipeline_numerics.py

Builds a 4-layer transformer, partitions it into 2 pipeline ranks with 2
virtual stages each, executes a real flexible-PP schedule — activations
actually flow between stages — and checks the gradients against the
monolithic model bitwise under emulated BF16.  Then renders the schedule's
timing on the simulator so you can see what the numerics just executed.
"""

import numpy as np

from repro.numerics import (
    ALL_BF16,
    TinyConfig,
    TinyTransformer,
    bitwise_equal,
    grads_in_order,
    make_pipeline,
)
from repro.numerics.hybrid import HybridDpPpTrainer
from repro.pp.analysis import ScheduleShape
from repro.pp.layout import build_layout
from repro.pp.render import render_timeline
from repro.pp.schedule import build_flexible_schedule
from repro.train.cost import StageCost
from repro.train.executor import execute_pipeline


def staged_vs_monolithic() -> None:
    print("=== Staged pipeline execution vs monolithic (BF16) ===")
    cfg = TinyConfig(n_layers=4)
    shape = ScheduleShape(pp=2, v=2, nc=2, nmb=4)
    schedule = build_flexible_schedule(shape)
    model = TinyTransformer.create(cfg, seed=1)
    rng = np.random.default_rng(2)
    tokens = rng.integers(0, cfg.vocab, (4, 12))
    targets = rng.integers(0, cfg.vocab, (4, 12))

    pipe = make_pipeline(model, schedule, ALL_BF16)
    loss, staged = pipe.run_step(tokens, targets)
    mono = grads_in_order(model, tokens, targets, range(4), ALL_BF16)
    print(f"pipelined loss {loss:.4f}; gradients bitwise equal to "
          f"monolithic: {bitwise_equal(staged, mono)}")

    print("\n=== The schedule the numerics just executed (timing view) ===")
    layout = build_layout(4, 2, 2)
    run = execute_pipeline(
        schedule, layout,
        lambda s: StageCost(1.0 * s.n_layers, 0, 0),
        lambda s: StageCost(2.0 * s.n_layers, 0, 0),
        p2p_seconds=0.2,
    )
    print(render_timeline(run, width=90))
    print("(digits = forward micro-batch, letters = backward, "
          "dots = bubbles)")


def hybrid_training() -> None:
    print("\n=== Hybrid DP(2) x PP(2) training ===")
    cfg = TinyConfig(n_layers=4)
    shape = ScheduleShape(pp=2, v=2, nc=2, nmb=4)
    trainer = HybridDpPpTrainer(
        model=TinyTransformer.create(cfg, seed=3),
        schedule=build_flexible_schedule(shape),
        dp=2,
        precision=ALL_BF16,
    )
    rng = np.random.default_rng(4)
    tokens = rng.integers(0, cfg.vocab, (trainer.global_batch, 12))
    targets = rng.integers(0, cfg.vocab, (trainer.global_batch, 12))
    losses = trainer.train(tokens, targets, steps=6, lr=0.3)
    print("loss curve:", " -> ".join(f"{l:.3f}" for l in losses))


if __name__ == "__main__":
    staged_vs_monolithic()
    hybrid_training()
