"""Quickstart: plan 4D parallelism for Llama 3 405B and simulate a step.

Run:
    python examples/quickstart.py

Walks the library's core loop: describe the hardware and the training
phase, let the Section 5 planner pick (tp, cp, pp, dp), then execute one
simulated optimizer step and read back throughput, bubble ratio, and
per-rank peak memory.
"""

from repro.hardware import GRAND_TETON_16K
from repro.model import LLAMA3_405B, model_params
from repro.parallel import (
    LLAMA3_405B_LONG_CONTEXT,
    LLAMA3_405B_SHORT_CONTEXT,
    plan_parallelism,
)
from repro.train import simulate_step


def main() -> None:
    print(f"model: {LLAMA3_405B.name} "
          f"({model_params(LLAMA3_405B) / 1e9:.0f}B params, "
          f"{LLAMA3_405B.n_layers} layers)")
    print(f"cluster: {GRAND_TETON_16K.num_gpus} x "
          f"{GRAND_TETON_16K.gpu.name}\n")

    for job, label in (
        (LLAMA3_405B_SHORT_CONTEXT, "short context (seq 8K)"),
        (LLAMA3_405B_LONG_CONTEXT, "long context (seq 131K)"),
    ):
        plan = plan_parallelism(LLAMA3_405B, job, GRAND_TETON_16K)
        print(f"=== {label} ===")
        print(plan.describe())

        report = simulate_step(
            LLAMA3_405B, plan.parallel, job, GRAND_TETON_16K,
            schedule_kind=plan.schedule if plan.schedule != "1f1b"
            else "flexible",
            v=plan.virtual_stages,
        )
        print(f"simulated step: {report.step_seconds:.2f} s  ->  "
              f"{report.tflops_per_gpu:.0f} TFLOPs/GPU, "
              f"bubble {report.mean_bubble_ratio * 100:.1f}%, "
              f"peak memory {report.max_peak_memory_gb:.1f} GiB\n")


if __name__ == "__main__":
    main()
