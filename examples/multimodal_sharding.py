"""Multimodal pipeline sharding (Section 3.2).

Run:
    python examples/multimodal_sharding.py

Re-enacts the production story: Option 2 (encoder as a serial
pre-processing stage) was fine at 448 px; the move to 672 px pushed the
encoder to a third of step latency; Option 3 (replicate the encoder across
PP ranks) recovered it.  Also compares the two self/cross layer groupings.
"""

from repro.hardware import grand_teton
from repro.model import LLAMA3_MULTIMODAL_448, LLAMA3_MULTIMODAL_672
from repro.pp.multimodal import (
    EncoderSharding,
    compare_layer_grouping,
    evaluate_encoder_sharding,
)

CLUSTER = grand_teton(64)
BS, PP = 16, 8


def encoder_story() -> None:
    print("=== Image-encoder sharding (Figure 6) ===")
    for mm, res in ((LLAMA3_MULTIMODAL_448, "448px"),
                    (LLAMA3_MULTIMODAL_672, "672px")):
        print(f"\nresolution {res} "
              f"({mm.vision.num_image_tokens} image tokens):")
        for option in EncoderSharding:
            r = evaluate_encoder_sharding(mm, option, bs=BS, pp=PP,
                                          cluster=CLUSTER)
            print(f"  option {option.value} ({option.name:22s}): "
                  f"encoder {r.encoder_seconds * 1e3:6.0f} ms, "
                  f"text {r.text_seconds * 1e3:6.0f} ms, "
                  f"encoder share {r.encoder_ratio * 100:5.1f}%")
    print("\npaper: serial encoder hit 33% at 672px; replication (option "
          "3) cut it to 8%")


def grouping_story() -> None:
    print("\n=== Self/cross layer grouping (Section 3.2.2) ===")
    for g in compare_layer_grouping(LLAMA3_MULTIMODAL_672, pp=PP, nmb=BS):
        print(f"  {g.grouping.name:8s}: {g.num_stages:3d} stages, "
              f"imbalance {g.imbalance:.2f}, "
              f"ideal bubble {g.ideal_bubble:.3f}, "
              f"effective step cost {g.effective_step_cost:.3f}")
    print("  -> WRAPPED (n self + 1 cross per stage) wins: balance beats "
          "stage count")


if __name__ == "__main__":
    encoder_story()
    grouping_story()
