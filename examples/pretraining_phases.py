"""The full pre-training progression (Section 2.2) plus schedule tuning.

Run:
    python examples/pretraining_phases.py

Plans every production phase with the Section 5 planner, then uses the
schedule autotuner to explore the memory/throughput design space around
the chosen configuration — the by-hand tuning of Sections 3.1 and 7.1,
automated.
"""

from repro.hardware import GRAND_TETON_16K, grand_teton
from repro.model import LLAMA3_405B, LLAMA3_405B_SCALED_26L
from repro.parallel import JobConfig, ParallelConfig, ZeroStage
from repro.pp import autotune_schedule
from repro.train import describe_pretraining, plan_pretraining


def phases_demo() -> None:
    print("=== Llama 3 405B pre-training phases ===")
    reports = plan_pretraining(LLAMA3_405B, GRAND_TETON_16K)
    print(describe_pretraining(reports))
    print("\nnote: tp/pp never change between phases — dp and cp absorb "
          "every batch/sequence change (the flexibility claim)")


def autotune_demo() -> None:
    print("\n=== Schedule autotuning (scaled-down 405B, pp=4, bs=12) ===")
    candidates = autotune_schedule(
        LLAMA3_405B_SCALED_26L,
        ParallelConfig(tp=8, cp=1, pp=4, dp=48, zero=ZeroStage.ZERO_1),
        JobConfig(seq=8192, gbs=576, ngpu=1536),
        grand_teton(1536),
        memory_budget_gb=40.0,
        congestion=2.0,
    )
    print("top candidates (feasible first, by TFLOPs):")
    for c in candidates[:8]:
        print("  " + c.describe())
    print(f"  ... {len(candidates)} evaluated")


if __name__ == "__main__":
    phases_demo()
    autotune_demo()
