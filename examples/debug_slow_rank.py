"""Slow-rank debugging at scale (Section 6.1, Figure 8).

Run:
    python examples/debug_slow_rank.py

Builds the paper's exact scenario — 8 GPUs with (cp=2, tp=4), a fault on
rank 6 — shows why naive TP-group inspection fingers the wrong rank, then
runs the top-down search.  Finally repeats on a 512-GPU 4D mesh and dumps
a Perfetto trace you can open at ui.perfetto.dev.
"""

import pathlib

from repro.debug import identify_slow_rank, run_synthetic_workload
from repro.obs.trace import export_chrome_trace
from repro.parallel import DeviceMesh, ParallelConfig


def figure8_demo() -> None:
    print("=== Figure 8: 8 GPUs, (cp=2, tp=4), fault injected on rank 6 ===")
    mesh = DeviceMesh(ParallelConfig(tp=4, cp=2))
    sim = run_synthetic_workload(mesh, slowdown={6: 0.5})

    # Naive view: inside TP group [0..3], which rank has the *shortest*
    # collective spans (i.e. joins last, everyone waits for it)?
    print("\nnaive TP-group view (group [0, 1, 2, 3]):")
    for rank in mesh.group_of(2, "tp"):
        span = sum(e.duration for e in sim.events_for(rank, kind="comm")
                   if e.name.startswith("tp:"))
        print(f"  rank {rank}: total TP-collective span {span:.2f} s")
    print("  -> rank 2 looks slowest here, but it is only waiting for its"
          " CP peer!")

    report = identify_slow_rank(sim, mesh)
    print("\ntop-down search:")
    print(report.describe())


def scale_demo() -> None:
    print("\n=== 512-GPU 4D mesh (tp=8, cp=2, pp=4, dp=8), fault on rank"
          " 261 ===")
    mesh = DeviceMesh(ParallelConfig(tp=8, cp=2, pp=4, dp=8))
    sim = run_synthetic_workload(mesh, slowdown={261: 0.8})
    report = identify_slow_rank(sim, mesh)
    print(report.describe())

    trace_path = pathlib.Path("slow_rank_trace.json")
    export_chrome_trace(sim, str(trace_path), mesh=mesh)
    print(f"\nPerfetto trace written to {trace_path} "
          "(open ui.perfetto.dev and load it)")


if __name__ == "__main__":
    figure8_demo()
    scale_demo()
