"""Numerical debugging of 4D parallelism (Section 6.2).

Run:
    python examples/numerics_debugging.py

Trains a small numpy transformer under emulated BF16 and demonstrates the
paper's methodology end to end:

1. a data-parallel run does not match a naive sequential run bit for bit
   (floating-point addition is not associative);
2. a sequential baseline forced into the same accumulation order matches
   the parallel code path **bitwise** — so any remaining difference in a
   real system is an implementation bug, not "numerics";
3. FP32 gradient accumulation (the production setting) collapses the
   order sensitivity, keeping loss curves together.
"""

import numpy as np

from repro.numerics import (
    ALL_BF16,
    PRODUCTION,
    TinyConfig,
    TinyTransformer,
    bitwise_equal,
    dp_sharded_grads,
    grads_in_order,
    loss_divergence,
    pp_backward_order,
    pp_microbatch_grads,
    relative_grad_gap,
    train_loss_curve,
)
from repro.pp.analysis import ScheduleShape
from repro.pp.schedule import build_flexible_schedule


def main() -> None:
    cfg = TinyConfig()
    model = TinyTransformer.create(cfg, seed=1)
    rng = np.random.default_rng(2)
    tokens = rng.integers(0, cfg.vocab, (8, 16))
    targets = rng.integers(0, cfg.vocab, (8, 16))

    print("=== 1. Parallelism changes accumulation order ===")
    naive = grads_in_order(model, tokens, targets, range(8), ALL_BF16)
    dp = dp_sharded_grads(model, tokens, targets, dp=4, precision=ALL_BF16)
    print(f"DP(4) vs naive sequential, BF16 accumulation: "
          f"bitwise equal = {bitwise_equal(naive, dp)}, "
          f"relative gap = {relative_grad_gap(naive, dp):.2e}")

    print("\n=== 2. Emulated-order baseline isolates bugs ===")
    sched = build_flexible_schedule(ScheduleShape(pp=4, v=2, nc=4, nmb=8))
    pp = pp_microbatch_grads(model, tokens, targets, sched, ppr=1,
                             precision=ALL_BF16)
    order = pp_backward_order(sched, ppr=1)
    emulated = grads_in_order(model, tokens, targets, order, ALL_BF16)
    print(f"PP stage (schedule-driven) vs sequential-in-PP-order: "
          f"bitwise equal = {bitwise_equal(pp, emulated)}")
    print("-> a real PP implementation that fails this check has a BUG;")
    print("   one that only differs from the naive order has a numerics "
          "gap.")

    print("\n=== 3. FP32 gradient accumulation closes the gap ===")
    naive32 = grads_in_order(model, tokens, targets, range(8), PRODUCTION)
    dp32 = dp_sharded_grads(model, tokens, targets, dp=4,
                            precision=PRODUCTION)
    gap16 = relative_grad_gap(naive, dp)
    gap32 = relative_grad_gap(naive32, dp32)
    print(f"relative order-gap: BF16 accum {gap16:.2e}  ->  "
          f"FP32 accum {gap32:.2e}  ({gap16 / gap32:.0f}x smaller)")

    print("\n=== 4. Loss-curve view over 12 training steps ===")
    ref = train_loss_curve(TinyTransformer.create(cfg, seed=9),
                           tokens, targets, 12, PRODUCTION)
    drift = train_loss_curve(TinyTransformer.create(cfg, seed=9),
                             tokens, targets, 12, ALL_BF16)
    rep = loss_divergence(drift, ref)
    print(f"{'step':>4} {'fp32-accum':>11} {'bf16-accum':>11}")
    for i, (a, b) in enumerate(zip(ref, drift)):
        print(f"{i:>4} {a:>11.5f} {b:>11.5f}")
    print(f"max loss gap {rep.max_gap:.2e} (both configurations train, "
          "but only FP32 accumulation is order-robust)")


if __name__ == "__main__":
    main()
