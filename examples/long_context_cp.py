"""Context parallelism end to end: real document-mask attention on CP
ranks, then the performance model at production scale.

Run:
    python examples/long_context_cp.py

Part 1 runs the paper's all-gather CP attention *numerically* (numpy) on a
document-structured batch and verifies it matches single-device attention
bit for bit — including documents that cross chunk boundaries — while the
ring-attention baseline matches only to rounding (Section 4).

Part 2 uses the calibrated H100 performance model to reproduce the
Figure 11/13 relative-HFU curves and the 3.89x scaling claim.
"""

import numpy as np

from repro.attention import attention_reference, document_mask
from repro.cp import (
    AttentionShape,
    allgather_cp_attention,
    allgather_cp_perf,
    rank_workloads,
    ring_cp_attention,
    ring_cp_perf,
    workload_imbalance,
)
from repro.data import make_batch
from repro.hardware import H100_HBM3, grand_teton


def numerical_demo() -> None:
    print("=== Part 1: exact CP attention on a document batch ===")
    rng = np.random.default_rng(0)
    seq, heads, kv_heads, head_dim, cp = 256, 8, 2, 16, 4
    batch = make_batch(seq, mean_doc_len=48.0, rng=rng)
    print(f"seq={seq}, cp={cp}, documents: {batch.doc_lens}")

    q = rng.standard_normal((seq, heads, head_dim))
    k = rng.standard_normal((seq, kv_heads, head_dim))
    v = rng.standard_normal((seq, kv_heads, head_dim))

    reference = attention_reference(q, k, v, document_mask(batch.doc_ids))
    ag = allgather_cp_attention(q, k, v, cp=cp, batch=batch)
    ring, ring_stats = ring_cp_attention(q, k, v, cp=cp, batch=batch)

    print(f"all-gather CP == reference bitwise: "
          f"{np.array_equal(ag.out, reference.out)}")
    print(f"ring CP max |err| vs reference:     "
          f"{np.abs(ring.out - reference.out).max():.2e} "
          f"(LSE-merge rounding; {ring_stats.kernels_launched} partial "
          "kernels)")

    workloads = rank_workloads(seq, cp, batch)
    print(f"per-rank score areas: {workloads} "
          f"(imbalance {workload_imbalance(workloads):.2f}; causal would "
          "be exactly balanced)\n")


def performance_demo() -> None:
    print("=== Part 2: calibrated H100 performance model ===")
    cluster = grand_teton(8, H100_HBM3)
    shape = AttentionShape()
    print(f"{'seq':>8} {'CP rel-HFU':>11} {'ring rel-HFU':>13} "
          f"{'CP speedup x4':>14}")
    for seq in (4096, 8192, 32768, 131072):
        cp_r = allgather_cp_perf(cluster, seq, 4, shape)
        ring_r = ring_cp_perf(cluster, seq, 4, shape)
        print(f"{seq:>8} {cp_r.relative_hfu * 100:>10.1f}% "
              f"{ring_r.relative_hfu * 100:>12.1f}% "
              f"{cp_r.speedup:>13.2f}x")
    print("\npaper: CP beats ring by up to 13.53% at 4-8K; 3.89x speedup "
          "on 4 GPUs at 131K")


if __name__ == "__main__":
    numerical_demo()
    performance_demo()
