"""Tests for the event-level ring-attention overlap simulation."""

import pytest

from repro.cp.perf import AttentionShape, allgather_cp_perf, ring_cp_perf
from repro.cp.ring_schedule import simulate_ring_attention
from repro.hardware.cluster import grand_teton
from repro.hardware.gpu import H100_HBM3

CLUSTER = grand_teton(8, H100_HBM3)
SHAPE = AttentionShape()


class TestOverlapMechanics:
    def test_compute_bound_at_long_seq(self):
        """At 131K the kernels dwarf the chunk transfers: exposed comm is
        a negligible share of the makespan."""
        tl = simulate_ring_attention(CLUSTER, 131072, 4, SHAPE)
        assert tl.exposed_fraction < 0.05

    def test_comm_exposed_at_short_seq(self):
        """At 4K the partial kernels are tiny; waiting for chunks shows
        up as compute-stream idle (the Figure 13 small-seq regime)."""
        short = simulate_ring_attention(CLUSTER, 4096, 4, SHAPE)
        long = simulate_ring_attention(CLUSTER, 131072, 4, SHAPE)
        assert short.exposed_fraction > long.exposed_fraction

    def test_makespan_bounds(self):
        tl = simulate_ring_attention(CLUSTER, 16384, 4, SHAPE)
        assert tl.makespan >= max(tl.per_rank_compute)
        assert all(e >= 0 for e in tl.per_rank_exposed_comm)

    def test_causal_balanced_compute(self):
        """Head/tail sharding balances ring compute under causal masks."""
        tl = simulate_ring_attention(CLUSTER, 32768, 4, SHAPE)
        lo, hi = min(tl.per_rank_compute), max(tl.per_rank_compute)
        assert hi / lo < 1.05

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_ring_attention(CLUSTER, 8192, 0, SHAPE)


class TestAgainstAnalyticalModel:
    def test_event_and_analytical_makespans_agree(self):
        """The event simulation and the closed-form model predict the
        same ring-attention latency within ~15% across the seq range —
        two independent derivations of the Figure 13 curve."""
        for seq in (4096, 16384, 131072):
            event = simulate_ring_attention(CLUSTER, seq, 4, SHAPE)
            analytical = ring_cp_perf(CLUSTER, seq, 4, SHAPE)
            ratio = event.makespan / (analytical.total_seconds
                                      - analytical.merge_seconds)
            assert 0.85 < ratio < 1.15

    def test_ring_makespan_exceeds_allgather_at_short_seq(self):
        """The Figure 13 conclusion re-derived from events: at cp=4/4K
        ring's fragmented execution takes longer than all-gather CP."""
        ring = simulate_ring_attention(CLUSTER, 4096, 4, SHAPE)
        ag = allgather_cp_perf(CLUSTER, 4096, 4, SHAPE)
        assert ring.makespan > ag.total_seconds
