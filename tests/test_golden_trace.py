"""Golden-file test for the Perfetto/Chrome trace export.

The committed reference (``tests/golden/trace_pp2_nmb4.json``) is the
trace of a pp=2, v=1, nc=2, nmb=4 pipeline executed with unit costs
(1.0s forward, 2.0s backward per layer, 0.25s P2P).  The export must
stay **byte-stable**: any change to event naming, field order, or the
JSON encoding shows up as a diff against this file and forces a
deliberate golden update.

Regenerate after an intentional format change with::

    PYTHONPATH=src python tests/test_golden_trace.py --regen
"""

import io
import json
from pathlib import Path

from repro.obs.trace import export_chrome_trace, validate_trace
from repro.pp.analysis import ScheduleShape
from repro.pp.layout import build_layout
from repro.pp.schedule import build_flexible_schedule
from repro.train.cost import StageCost
from repro.train.executor import execute_pipeline

GOLDEN = Path(__file__).parent / "golden" / "trace_pp2_nmb4.json"


def _reference_run():
    shape = ScheduleShape(pp=2, v=1, nc=2, nmb=4)
    schedule = build_flexible_schedule(shape)
    layout = build_layout(shape.pp * shape.v, shape.pp, shape.v)
    return execute_pipeline(
        schedule, layout,
        lambda s: StageCost(1.0 * max(s.n_layers, 1), 0.0, 0.0),
        lambda s: StageCost(2.0 * max(s.n_layers, 1), 0.0, 0.0),
        p2p_seconds=0.25,
    )


def _export_bytes() -> str:
    buf = io.StringIO()
    export_chrome_trace(
        _reference_run().sim, buf,
        extra_metadata={"config": "pp=2 v=1 nc=2 nmb=4"})
    return buf.getvalue()


def test_export_matches_golden_bytes():
    assert _export_bytes() == GOLDEN.read_text(encoding="utf-8"), (
        "trace export changed; if intentional, regenerate with "
        "`PYTHONPATH=src python tests/test_golden_trace.py --regen`")


def test_golden_is_valid_trace_event_json():
    obj = json.loads(GOLDEN.read_text(encoding="utf-8"))
    assert validate_trace(obj) == []
    names = [e["name"] for e in obj["traceEvents"] if e.get("ph") == "X"]
    # 4 micro-batches in each direction on each of 2 stages.
    assert sum(1 for n in names if n.startswith("F:")) == 8
    assert sum(1 for n in names if n.startswith("B:")) == 8


def test_export_is_deterministic():
    assert _export_bytes() == _export_bytes()


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(_export_bytes(), encoding="utf-8")
        print(f"wrote {GOLDEN}")
    else:
        print(__doc__)
