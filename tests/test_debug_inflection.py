"""Tests for onset/changepoint detection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.debug.inflection import (
    detect_changepoint,
    detect_fleet_regressions,
    synth_step_durations,
)


class TestDetectChangepoint:
    def test_clean_onset_found_exactly(self):
        x = synth_step_durations(200, noise=0.005, fault_step=120,
                                 fault_slowdown=0.2,
                                 rng=np.random.default_rng(1))
        cp = detect_changepoint(x)
        assert cp is not None
        assert abs(cp.step - 120) <= 2
        assert cp.slowdown == pytest.approx(0.2, abs=0.05)

    def test_no_fault_no_detection(self):
        x = synth_step_durations(300, noise=0.01,
                                 rng=np.random.default_rng(2))
        assert detect_changepoint(x) is None

    def test_small_series_rejected(self):
        assert detect_changepoint([1.0] * 5) is None

    def test_subtle_fault_needs_enough_data(self):
        rng = np.random.default_rng(3)
        short = synth_step_durations(30, noise=0.02, fault_step=15,
                                     fault_slowdown=0.03, rng=rng)
        long = synth_step_durations(2000, noise=0.02, fault_step=1000,
                                    fault_slowdown=0.03,
                                    rng=np.random.default_rng(3))
        assert detect_changepoint(long) is not None
        # The short series may or may not clear threshold; it must never
        # report a wildly wrong location when it does.
        cp = detect_changepoint(short)
        if cp is not None:
            assert 10 <= cp.step <= 20

    @settings(max_examples=20, deadline=None)
    @given(
        fault_step=st.integers(min_value=40, max_value=160),
        slowdown=st.floats(min_value=0.1, max_value=0.5),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_onset_localised_property(self, fault_step, slowdown, seed):
        x = synth_step_durations(200, noise=0.005, fault_step=fault_step,
                                 fault_slowdown=slowdown,
                                 rng=np.random.default_rng(seed))
        cp = detect_changepoint(x)
        assert cp is not None
        assert abs(cp.step - fault_step) <= 3


class TestFleetScan:
    def test_faulty_rank_ranked_first(self):
        rng = np.random.default_rng(4)
        series = {
            r: synth_step_durations(150, noise=0.01, rng=rng)
            for r in range(8)
        }
        series[5] = synth_step_durations(150, noise=0.01, fault_step=60,
                                         fault_slowdown=0.15, rng=rng)
        series[2] = synth_step_durations(150, noise=0.01, fault_step=100,
                                         fault_slowdown=0.05, rng=rng)
        found = detect_fleet_regressions(series)
        assert [c.rank for c in found][:2] == [5, 2]
        assert found[0].slowdown > found[1].slowdown

    def test_recoveries_not_reported(self):
        rng = np.random.default_rng(5)
        x = synth_step_durations(150, noise=0.01, fault_step=60,
                                 fault_slowdown=-0.2, rng=rng)
        found = detect_fleet_regressions({0: x})
        assert found == []

    def test_fault_step_validated(self):
        with pytest.raises(ValueError):
            synth_step_durations(10, fault_step=10)
