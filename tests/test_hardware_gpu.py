"""Tests for GPU specs and the roofline GEMM model."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.gpu import (
    H100_HBM2E,
    H100_HBM3,
    attainable_tflops,
    gemm_efficiency,
    gemm_time,
)


class TestGpuSpec:
    def test_h100_hbm3_headline_numbers(self):
        assert H100_HBM3.peak_bf16_tflops == 989.0
        assert H100_HBM3.hbm_capacity_gb == 80.0
        assert H100_HBM3.tdp_watts == 700.0

    def test_hbm2e_has_lower_bandwidth_same_compute(self):
        assert H100_HBM2E.peak_bf16_tflops == H100_HBM3.peak_bf16_tflops
        assert H100_HBM2E.hbm_bandwidth_gbps < H100_HBM3.hbm_bandwidth_gbps

    def test_unit_conversions(self):
        assert H100_HBM3.peak_flops == pytest.approx(989e12)
        assert H100_HBM3.hbm_bandwidth == pytest.approx(3350e9)


class TestGemmEfficiency:
    def test_large_gemm_approaches_saturation(self):
        eff = gemm_efficiency(8192, 8192, 8192)
        assert 0.5 < eff < 0.58

    def test_small_dims_hurt(self):
        assert gemm_efficiency(32, 8192, 8192) < gemm_efficiency(
            8192, 8192, 8192
        )

    def test_monotone_in_each_dim(self):
        base = gemm_efficiency(256, 256, 256)
        assert gemm_efficiency(512, 256, 256) > base
        assert gemm_efficiency(256, 512, 256) > base
        assert gemm_efficiency(256, 256, 512) > base

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            gemm_efficiency(0, 10, 10)

    @given(
        st.integers(min_value=1, max_value=65536),
        st.integers(min_value=1, max_value=65536),
        st.integers(min_value=1, max_value=65536),
    )
    def test_always_a_fraction(self, m, n, k):
        assert 0.0 < gemm_efficiency(m, n, k) < 1.0


class TestGemmTime:
    def test_compute_bound_large_gemm(self):
        # 8K^3 GEMM: ~1.1 PFLOP at ~550 TFLOPs -> about 2 ms.
        t = gemm_time(H100_HBM3, 8192, 8192, 8192)
        flops = 2 * 8192**3
        assert flops / t < H100_HBM3.peak_flops  # cannot beat peak
        assert 1e-3 < t < 5e-3

    def test_memory_bound_skinny_gemm(self):
        # m=1: streaming the weight matrix dominates.
        t = gemm_time(H100_HBM3, 1, 8192, 8192, include_launch=False)
        weight_bytes = 2 * 8192 * 8192
        assert t >= weight_bytes / H100_HBM3.hbm_bandwidth

    def test_launch_overhead_included_by_default(self):
        with_l = gemm_time(H100_HBM3, 64, 64, 64)
        without = gemm_time(H100_HBM3, 64, 64, 64, include_launch=False)
        assert with_l - without == pytest.approx(
            H100_HBM3.kernel_launch_us * 1e-6
        )

    def test_slower_hbm_slows_memory_bound_ops(self):
        t3 = gemm_time(H100_HBM3, 1, 8192, 8192, include_launch=False)
        t2e = gemm_time(H100_HBM2E, 1, 8192, 8192, include_launch=False)
        assert t2e > t3

    @given(st.integers(min_value=1, max_value=4096))
    def test_time_monotone_in_m(self, m):
        assert gemm_time(H100_HBM3, m + 64, 1024, 1024) > gemm_time(
            H100_HBM3, m, 1024, 1024
        ) * 0.999


class TestAttainableTflops:
    def test_never_exceeds_peak(self):
        assert attainable_tflops(H100_HBM3, 1e12, 1e6) <= 989.0

    def test_memory_bound_op_capped_by_bandwidth(self):
        # 1 FLOP per byte: attainable = bandwidth in GFLOP terms.
        tf = attainable_tflops(H100_HBM3, 1e9, 1e9)
        assert tf == pytest.approx(3350e9 / 1e12)

    def test_rejects_zero_flops(self):
        with pytest.raises(ValueError):
            attainable_tflops(H100_HBM3, 0, 1)
