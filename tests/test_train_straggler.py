"""Tests for straggler injection in the pipeline executor: the Section 8.1
claim that one slow accelerator sets the whole pipeline's pace."""

import pytest

from repro.pp.analysis import ScheduleShape
from repro.pp.layout import build_layout
from repro.pp.schedule import build_flexible_schedule
from repro.train.cost import StageCost
from repro.train.executor import execute_pipeline

SHAPE = ScheduleShape(pp=4, v=2, nc=4, nmb=16)


def _run(scale=None):
    sched = build_flexible_schedule(SHAPE)
    layout = build_layout(SHAPE.pp * SHAPE.v, SHAPE.pp, SHAPE.v)
    return execute_pipeline(
        sched, layout,
        lambda s: StageCost(1.0 * s.n_layers, 0, 0),
        lambda s: StageCost(2.0 * s.n_layers, 0, 0),
        p2p_seconds=0.0,
        rank_compute_scale=scale,
    )


class TestStragglerInjection:
    def test_one_slow_rank_slows_the_pipeline(self):
        base = _run()
        slow = _run({2: 1.2})
        assert slow.makespan > base.makespan

    def test_pipeline_pays_nearly_the_full_slowdown(self):
        """Fine-grain synchronisation: a 20% slower rank costs close to
        20% of end-to-end time, not 20%/pp (Section 8.1)."""
        base = _run()
        slow = _run({1: 1.2})
        inflation = slow.makespan / base.makespan - 1
        assert inflation > 0.12

    def test_uniform_slowdown_scales_exactly(self):
        base = _run()
        slow = _run({r: 1.5 for r in range(SHAPE.pp)})
        assert slow.makespan == pytest.approx(1.5 * base.makespan)

    def test_speedup_on_non_critical_rank_bounded(self):
        """Making one rank faster cannot speed the pipeline beyond the
        other ranks' critical path."""
        base = _run()
        fast = _run({0: 0.9})
        assert fast.makespan <= base.makespan
        assert fast.makespan > 0.8 * base.makespan

    def test_validation(self):
        with pytest.raises(ValueError):
            _run({0: 0.0})

    def test_only_compute_scaled_not_comm(self):
        """The multiplier models a throttled GPU: communication terms in
        the stage cost are unaffected."""
        sched = build_flexible_schedule(SHAPE)
        layout = build_layout(SHAPE.pp * SHAPE.v, SHAPE.pp, SHAPE.v)

        def run(scale):
            return execute_pipeline(
                sched, layout,
                lambda s: StageCost(0.0, 1.0 * s.n_layers, 0),
                lambda s: StageCost(0.0, 2.0 * s.n_layers, 0),
                p2p_seconds=0.0,
                rank_compute_scale=scale,
            ).makespan

        assert run({1: 2.0}) == pytest.approx(run(None))
