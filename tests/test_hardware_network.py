"""Tests for link specs and the effective-bandwidth model."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.network import (
    NVLINK_H100,
    ROCE_400G,
    LinkSpec,
    effective_bandwidth,
    transfer_time,
)


class TestLinkSpecs:
    def test_nvlink_much_faster_than_roce(self):
        assert NVLINK_H100.bandwidth_gbps / ROCE_400G.bandwidth_gbps >= 5

    def test_roce_matches_paper_50gbps(self):
        # Section 5.1 quotes 50 GB/s RoCE per rank.
        assert ROCE_400G.bandwidth_gbps == 50.0

    def test_half_bandwidth_size(self):
        link = LinkSpec("t", bandwidth_gbps=100.0, latency_us=10.0)
        assert link.half_bandwidth_size == pytest.approx(100e9 * 10e-6)


class TestEffectiveBandwidth:
    def test_half_at_half_size(self):
        s = NVLINK_H100.half_bandwidth_size
        assert effective_bandwidth(NVLINK_H100, s) == pytest.approx(
            NVLINK_H100.bandwidth / 2
        )

    def test_approaches_peak_for_large_messages(self):
        bw = effective_bandwidth(ROCE_400G, 10e9)
        assert bw > 0.99 * ROCE_400G.bandwidth

    def test_small_messages_are_latency_bound(self):
        bw = effective_bandwidth(ROCE_400G, 1024)
        assert bw < 0.01 * ROCE_400G.bandwidth

    @given(st.floats(min_value=1.0, max_value=1e12))
    def test_monotone_in_size(self, size):
        assert effective_bandwidth(NVLINK_H100, size * 2) > \
            effective_bandwidth(NVLINK_H100, size)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            effective_bandwidth(NVLINK_H100, 0)


class TestTransferTime:
    def test_zero_bytes_costs_latency(self):
        assert transfer_time(ROCE_400G, 0) == ROCE_400G.latency

    def test_includes_latency_and_serialisation(self):
        t = transfer_time(ROCE_400G, 50e9)
        assert t == pytest.approx(ROCE_400G.latency + 1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            transfer_time(ROCE_400G, -1)

    @given(st.floats(min_value=0, max_value=1e12))
    def test_at_least_latency(self, nbytes):
        assert transfer_time(NVLINK_H100, nbytes) >= NVLINK_H100.latency
