"""Tests for gradient/activation memory lifetime (Figure 4)."""

import pytest

from repro.parallel.config import ZeroStage
from repro.pp.analysis import ScheduleShape
from repro.pp.grad_memory import peak_in_flight_from_schedule, track_memory
from repro.pp.schedule import build_afab_schedule, build_flexible_schedule

SHAPE = ScheduleShape(pp=4, v=4, nc=4, nmb=8)


class TestReduceScatterPlacement:
    def test_zero1_one_rs_per_stage_at_end(self):
        """Figure 4a: ZeRO-1 launches reduce-scatter only on the last
        micro-batch of each virtual stage."""
        sched = build_flexible_schedule(SHAPE)
        tl = track_memory(sched, 0, ZeroStage.ZERO_1)
        assert tl.reduce_scatter_count == SHAPE.v
        # All RS events are in the final stretch of the program.
        rs_idx = [s.op_index for s in tl.samples if s.reduce_scatter_launched]
        assert min(rs_idx) > len(tl.samples) // 2

    def test_zero2_rs_every_round(self):
        """Figure 4c: ZeRO-2 reduce-scatters at the end of each run of
        consecutive micro-batches — rounds-times more collectives."""
        sched = build_flexible_schedule(SHAPE)
        z1 = track_memory(sched, 0, ZeroStage.ZERO_1)
        z2 = track_memory(sched, 0, ZeroStage.ZERO_2)
        assert z2.reduce_scatter_count == SHAPE.v * SHAPE.rounds
        assert z2.reduce_scatter_count > z1.reduce_scatter_count

    def test_afab_zero2_single_run_per_stage(self):
        """Figure 4b: in AFAB each stage's backwards are consecutive, so
        ZeRO-2 reduce-scatters once per stage per round."""
        sched = build_afab_schedule(ScheduleShape(pp=4, v=4, nc=8, nmb=8))
        tl = track_memory(sched, 0, ZeroStage.ZERO_2)
        assert tl.reduce_scatter_count == 4  # one per virtual stage


class TestMemoryLevels:
    def test_zero1_grad_memory_monotone_until_end(self):
        """ZeRO-1 gradient memory only grows (buffers never reshard)."""
        sched = build_flexible_schedule(SHAPE)
        tl = track_memory(sched, 0, ZeroStage.ZERO_1)
        grads = [s.grad_bytes for s in tl.samples]
        assert all(b >= a for a, b in zip(grads, grads[1:]))
        assert tl.peak_grad_bytes == SHAPE.v  # all stages unsharded

    def test_zero2_peak_grad_below_zero1(self):
        sched = build_flexible_schedule(SHAPE)
        z1 = track_memory(sched, 0, ZeroStage.ZERO_1, shard_degree=8)
        z2 = track_memory(sched, 0, ZeroStage.ZERO_2, shard_degree=8)
        assert z2.peak_grad_bytes < z1.peak_grad_bytes

    def test_activation_returns_to_zero(self):
        sched = build_flexible_schedule(SHAPE)
        tl = track_memory(sched, 0, ZeroStage.ZERO_1)
        assert tl.samples[-1].activation_bytes == 0.0

    def test_afab_activation_peak_equals_tmb(self):
        shape = ScheduleShape(pp=2, v=2, nc=4, nmb=4)
        sched = build_afab_schedule(shape)
        tl = track_memory(sched, 0, ZeroStage.ZERO_1)
        assert tl.peak_activation_bytes == shape.tmb

    def test_stage_weights_scale_memory(self):
        sched = build_flexible_schedule(SHAPE)
        base = track_memory(sched, 0, ZeroStage.ZERO_1)
        heavy = track_memory(
            sched, 0, ZeroStage.ZERO_1,
            stage_weights={vs: 2.0 for vs in range(SHAPE.v)},
        )
        assert heavy.peak_total_bytes == pytest.approx(
            2 * base.peak_total_bytes
        )

    def test_shard_degree_validated(self):
        sched = build_flexible_schedule(SHAPE)
        with pytest.raises(ValueError):
            track_memory(sched, 0, ZeroStage.ZERO_2, shard_degree=0)


class TestPeakInFlight:
    def test_matches_analysis_for_all_ranks(self):
        sched = build_flexible_schedule(SHAPE)
        for ppr in range(SHAPE.pp):
            assert peak_in_flight_from_schedule(sched, ppr) == \
                SHAPE.peak_in_flight(ppr)
