"""Tests for collective cost models."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.cluster import grand_teton
from repro.sim.collectives import (
    achieved_all_gather_bandwidth,
    all_gather_time,
    all_reduce_time,
    broadcast_time,
    p2p_time,
    reduce_scatter_time,
)

CLUSTER = grand_teton(64)


class TestAllGather:
    def test_single_rank_is_free(self):
        c = all_gather_time(CLUSTER, [0], 1e9)
        assert c.seconds == 0.0

    def test_ring_wire_bytes(self):
        c = all_gather_time(CLUSTER, [0, 1, 2, 3], 4e6)
        assert c.bytes_on_wire == pytest.approx(3e6)

    def test_intra_node_faster_than_inter_node(self):
        intra = all_gather_time(CLUSTER, [0, 1, 2, 3], 1e8)
        inter = all_gather_time(CLUSTER, [0, 8, 16, 24], 1e8)
        assert intra.seconds < inter.seconds

    def test_congestion_slows(self):
        clean = all_gather_time(CLUSTER, [0, 8], 1e8)
        congested = all_gather_time(CLUSTER, [0, 8], 1e8, congestion=2.0)
        assert congested.seconds > clean.seconds

    def test_reduce_scatter_symmetric(self):
        ag = all_gather_time(CLUSTER, [0, 1, 2, 3], 1e8)
        rs = reduce_scatter_time(CLUSTER, [0, 1, 2, 3], 1e8)
        assert ag.seconds == rs.seconds

    @given(st.integers(min_value=2, max_value=8))
    def test_large_payload_bandwidth_near_link_rate(self, n):
        ranks = list(range(n))  # intra-node
        bw = achieved_all_gather_bandwidth(CLUSTER, ranks, 10e9)
        link = CLUSTER.intra_node_link.bandwidth_gbps
        assert 0.7 * link < bw <= link

    def test_bandwidth_grows_with_message_size(self):
        small = achieved_all_gather_bandwidth(CLUSTER, [0, 1], 1e5)
        big = achieved_all_gather_bandwidth(CLUSTER, [0, 1], 1e9)
        assert big > small


class TestAllReduce:
    def test_twice_the_steps_of_all_gather(self):
        ag = all_gather_time(CLUSTER, [0, 1, 2, 3], 1e8)
        ar = all_reduce_time(CLUSTER, [0, 1, 2, 3], 1e8)
        assert ar.seconds == pytest.approx(2 * ag.seconds)

    def test_single_rank_free(self):
        assert all_reduce_time(CLUSTER, [5], 1e9).seconds == 0.0


class TestBroadcast:
    def test_log_hops(self):
        b2 = broadcast_time(CLUSTER, [0, 1], 1e6)
        b8 = broadcast_time(CLUSTER, list(range(8)), 1e6)
        assert b8.seconds == pytest.approx(3 * b2.seconds)

    def test_validations(self):
        with pytest.raises(ValueError):
            broadcast_time(CLUSTER, [], 1e6)
        with pytest.raises(ValueError):
            broadcast_time(CLUSTER, [0, 0], 1e6)
        with pytest.raises(ValueError):
            broadcast_time(CLUSTER, [0, 1], -5)
        with pytest.raises(ValueError):
            broadcast_time(CLUSTER, [0, 1], 1e6, congestion=0.5)


class TestP2P:
    def test_intra_vs_inter_node(self):
        intra = p2p_time(CLUSTER, 0, 1, 1e8)
        inter = p2p_time(CLUSTER, 0, 8, 1e8)
        assert inter > intra

    def test_congestion(self):
        assert p2p_time(CLUSTER, 0, 8, 1e8, congestion=2.0) > \
            p2p_time(CLUSTER, 0, 8, 1e8)

    def test_zero_bytes_is_latency(self):
        assert p2p_time(CLUSTER, 0, 8, 0) == \
            CLUSTER.inter_node_link.latency
