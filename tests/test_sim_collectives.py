"""Tests for collective cost models."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.cluster import grand_teton
from repro.sim.collectives import (
    RetryPolicy,
    achieved_all_gather_bandwidth,
    all_gather_time,
    all_reduce_time,
    all_to_all_time,
    broadcast_time,
    p2p_time,
    reduce_scatter_time,
)

CLUSTER = grand_teton(64)

#: Every group cost model, for degenerate-input sweeps.
COST_FNS = (all_gather_time, reduce_scatter_time, all_reduce_time,
            broadcast_time, all_to_all_time)


class TestAllGather:
    def test_single_rank_is_free(self):
        c = all_gather_time(CLUSTER, [0], 1e9)
        assert c.seconds == 0.0

    def test_ring_wire_bytes(self):
        c = all_gather_time(CLUSTER, [0, 1, 2, 3], 4e6)
        assert c.bytes_on_wire == pytest.approx(3e6)

    def test_intra_node_faster_than_inter_node(self):
        intra = all_gather_time(CLUSTER, [0, 1, 2, 3], 1e8)
        inter = all_gather_time(CLUSTER, [0, 8, 16, 24], 1e8)
        assert intra.seconds < inter.seconds

    def test_congestion_slows(self):
        clean = all_gather_time(CLUSTER, [0, 8], 1e8)
        congested = all_gather_time(CLUSTER, [0, 8], 1e8, congestion=2.0)
        assert congested.seconds > clean.seconds

    def test_reduce_scatter_symmetric(self):
        ag = all_gather_time(CLUSTER, [0, 1, 2, 3], 1e8)
        rs = reduce_scatter_time(CLUSTER, [0, 1, 2, 3], 1e8)
        assert ag.seconds == rs.seconds

    @given(st.integers(min_value=2, max_value=8))
    def test_large_payload_bandwidth_near_link_rate(self, n):
        ranks = list(range(n))  # intra-node
        bw = achieved_all_gather_bandwidth(CLUSTER, ranks, 10e9)
        link = CLUSTER.intra_node_link.bandwidth_gbps
        assert 0.7 * link < bw <= link

    def test_bandwidth_grows_with_message_size(self):
        small = achieved_all_gather_bandwidth(CLUSTER, [0, 1], 1e5)
        big = achieved_all_gather_bandwidth(CLUSTER, [0, 1], 1e9)
        assert big > small


class TestAllReduce:
    def test_twice_the_steps_of_all_gather(self):
        ag = all_gather_time(CLUSTER, [0, 1, 2, 3], 1e8)
        ar = all_reduce_time(CLUSTER, [0, 1, 2, 3], 1e8)
        assert ar.seconds == pytest.approx(2 * ag.seconds)

    def test_single_rank_free(self):
        assert all_reduce_time(CLUSTER, [5], 1e9).seconds == 0.0


class TestBroadcast:
    def test_log_hops(self):
        b2 = broadcast_time(CLUSTER, [0, 1], 1e6)
        b8 = broadcast_time(CLUSTER, list(range(8)), 1e6)
        assert b8.seconds == pytest.approx(3 * b2.seconds)

    def test_validations(self):
        with pytest.raises(ValueError):
            broadcast_time(CLUSTER, [], 1e6)
        with pytest.raises(ValueError):
            broadcast_time(CLUSTER, [0, 0], 1e6)
        with pytest.raises(ValueError):
            broadcast_time(CLUSTER, [0, 1], -5)
        with pytest.raises(ValueError):
            broadcast_time(CLUSTER, [0, 1], 1e6, congestion=0.5)

    def test_zero_bytes_is_latency_only(self):
        """Regression: a zero-byte broadcast used to divide by an
        effective bandwidth computed at message size 0 and raise; it must
        price as pure latency (hops * alpha), like the ring models."""
        link = CLUSTER.intra_node_link
        c = broadcast_time(CLUSTER, [0, 1, 2, 3], 0.0)
        assert c.seconds == pytest.approx(2 * link.latency)  # ceil(log2 4)
        assert c.bytes_on_wire == 0.0
        assert c.algorithm_bandwidth == 0.0


class TestAllToAll:
    def test_single_rank_is_free(self):
        c = all_to_all_time(CLUSTER, [3], 1e9)
        assert c.seconds == 0.0
        assert c.algorithm_bandwidth == float("inf")

    def test_pairwise_wire_bytes(self):
        # n - 1 distinct shards of S / n bytes each leave every rank.
        c = all_to_all_time(CLUSTER, [0, 1, 2, 3], 4e6)
        assert c.bytes_on_wire == pytest.approx(3e6)

    def test_hierarchical_intra_faster_than_cross_node(self):
        intra = all_to_all_time(CLUSTER, [0, 1, 2, 3], 1e8)
        inter = all_to_all_time(CLUSTER, [0, 8, 16, 24], 1e8)
        assert intra.seconds < inter.seconds

    def test_mixed_group_between_pure_extremes(self):
        # Two nodes' worth of ranks: slower than all-intra, faster than
        # a group where every peer is cross-node.
        intra = all_to_all_time(CLUSTER, [0, 1, 2, 3], 1e8)
        mixed = all_to_all_time(CLUSTER, [0, 1, 8, 9], 1e8)
        spread = all_to_all_time(CLUSTER, [0, 8, 16, 24], 1e8)
        assert intra.seconds < mixed.seconds < spread.seconds

    def test_congestion_slows(self):
        clean = all_to_all_time(CLUSTER, [0, 8], 1e8)
        congested = all_to_all_time(CLUSTER, [0, 8], 1e8, congestion=2.0)
        assert congested.seconds > clean.seconds

    def test_validations(self):
        with pytest.raises(ValueError):
            all_to_all_time(CLUSTER, [], 1e6)
        with pytest.raises(ValueError):
            all_to_all_time(CLUSTER, [0, 0], 1e6)
        with pytest.raises(ValueError):
            all_to_all_time(CLUSTER, [0, 1], -1)
        with pytest.raises(ValueError):
            all_to_all_time(CLUSTER, [0, 1], 1e6, congestion=0.9)


class TestDegenerateInputs:
    """Zero-byte and single-rank sweeps over every group cost model."""

    @pytest.mark.parametrize("fn", COST_FNS)
    def test_zero_bytes_never_raises(self, fn):
        for ranks in ([0, 1], [0, 8], list(range(8)), [0, 8, 16, 24]):
            c = fn(CLUSTER, ranks, 0.0)
            assert c.seconds >= 0.0
            assert c.bytes_on_wire == 0.0

    @pytest.mark.parametrize("fn", COST_FNS)
    def test_single_rank_group_is_free(self, fn):
        c = fn(CLUSTER, [7], 1e9)
        assert c.seconds == 0.0
        assert c.bytes_on_wire == 0.0
        assert c.algorithm_bandwidth == float("inf")

    def test_bandwidth_single_rank_is_zero(self):
        assert achieved_all_gather_bandwidth(CLUSTER, [0], 1e9) == 0.0

    def test_retry_overhead_zero_failures_is_zero(self):
        assert RetryPolicy().retry_overhead_seconds(0) == 0.0


class TestP2P:
    def test_intra_vs_inter_node(self):
        intra = p2p_time(CLUSTER, 0, 1, 1e8)
        inter = p2p_time(CLUSTER, 0, 8, 1e8)
        assert inter > intra

    def test_congestion(self):
        assert p2p_time(CLUSTER, 0, 8, 1e8, congestion=2.0) > \
            p2p_time(CLUSTER, 0, 8, 1e8)

    def test_zero_bytes_is_latency(self):
        assert p2p_time(CLUSTER, 0, 8, 0) == \
            CLUSTER.inter_node_link.latency

    def test_congestion_applied_values_bitwise(self):
        """Regression for the branch restructure: each branch computes
        only what it returns, and the congested transfer time must stay
        bitwise ``latency + bytes / (bandwidth / congestion)``."""
        for src, dst in ((0, 1), (0, 8)):
            link = CLUSTER.link_between(src, dst)
            for congestion in (1.0, 1.5, 4.0):
                expected = link.latency + 1e8 / (link.bandwidth / congestion)
                assert p2p_time(CLUSTER, src, dst, 1e8,
                                congestion=congestion) == expected
        # Zero bytes under congestion: pure latency, no bandwidth term.
        assert p2p_time(CLUSTER, 0, 8, 0, congestion=8.0) == \
            CLUSTER.inter_node_link.latency
