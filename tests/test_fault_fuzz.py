"""Fault-randomizing fuzz mode: determinism, shrinking, CLI wiring.

The campaign property: a dominant compute straggler must be localised to
the exact rank despite benign noise faults.  These tests pin the seeded
determinism contract, prove the shrinker really minimises to the noise
subset that breaks localisation, and exercise the ``repro verify
--faults`` / ``repro faults`` CLI surfaces end to end.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.faults import ComputeStraggler, PeriodicJitter
from repro.obs.report import verify_report
from repro.parallel.mesh import DeviceMesh
from repro.verify.fuzz import (
    FaultScenario,
    check_fault_scenario,
    run_fault_fuzz,
    sample_fault_scenario,
    shrink_fault_scenario,
)

#: Keep in lockstep with the ci.yml fault-fuzz job invocation.
CI_CASES, CI_SEED = 60, 0


def _json_out(capsys) -> dict:
    return json.loads(capsys.readouterr().out)


class TestCampaign:
    def test_deterministic_per_seed(self):
        a = run_fault_fuzz(8, seed=5)
        b = run_fault_fuzz(8, seed=5)
        assert a.to_dict() == b.to_dict()
        assert run_fault_fuzz(8, seed=6).to_dict() != a.to_dict()

    def test_ci_campaign_is_clean(self):
        result = run_fault_fuzz(CI_CASES, seed=CI_SEED)
        assert result.ok, (
            f"{result.failed_cases} localisation misses; first shrunk "
            f"reproducer: "
            f"{result.failures[0].shrunk.describe() if result.failures else '-'}")
        assert result.cases == CI_CASES

    def test_sampler_draws_valid_scenarios(self):
        rng = np.random.default_rng(123)
        for _ in range(50):
            s = sample_fault_scenario(rng)
            mesh = DeviceMesh(s.parallel)
            assert 0 <= s.victim < mesh.world_size
            assert 0.4 <= s.extra_seconds < 0.8
            assert len(s.noise) <= 2
            s.plan.validate(mesh)  # raises on an out-of-mesh fault

    def test_rejects_zero_cases(self):
        with pytest.raises(ValueError):
            run_fault_fuzz(0)


class TestShrinking:
    # A second, stronger straggler in the noise legitimately out-blames
    # the victim -- a genuinely failing scenario to shrink.
    BASE = FaultScenario(tp=4, cp=2, pp=1, dp=1, victim=1,
                         extra_seconds=0.5)
    LOUD = ComputeStraggler(rank=6, extra_seconds=2.0)
    QUIET = PeriodicJitter(rank=0, period=2, extra_seconds=0.01)

    def test_shrinks_to_the_breaking_noise_fault(self):
        import dataclasses

        scenario = dataclasses.replace(self.BASE,
                                       noise=(self.QUIET, self.LOUD))
        ok, score = check_fault_scenario(scenario)
        assert not ok and score.detected_rank == 6

        shrunk = shrink_fault_scenario(
            scenario, lambda s: not check_fault_scenario(s)[0])
        assert shrunk.noise == (self.LOUD,)
        assert shrunk.cost < scenario.cost

    def test_refuses_to_shrink_a_passing_scenario(self):
        assert check_fault_scenario(self.BASE)[0]
        with pytest.raises(ValueError, match="does not fail"):
            shrink_fault_scenario(
                self.BASE, lambda s: not check_fault_scenario(s)[0])


class TestReportIntegration:
    def test_verify_report_folds_in_fault_fuzz(self):
        result = run_fault_fuzz(4, seed=0)
        rep = verify_report(None, (), fault_fuzz=result)
        assert rep["ok"] is result.ok
        assert rep["fault_fuzz"]["cases"] == 4
        assert "fuzz" not in rep


class TestCli:
    def test_verify_faults_json(self, capsys):
        rc = main(["verify", "--faults", "--fuzz", "5", "--seed", "0",
                   "--no-oracles", "--no-step-invariants", "--json"])
        rep = _json_out(capsys)
        assert rc == 0 and rep["ok"] is True
        assert rep["schema"] == "repro.verify/v2"
        assert rep["fault_fuzz"]["failed_cases"] == 0
        assert "fuzz" not in rep

    def test_faults_json_with_explicit_spec(self, capsys):
        rc = main(["faults", "--fault", "straggler:rank=6,extra=0.5",
                   "--json"])
        rep = _json_out(capsys)
        assert rc == 0
        assert rep["schema"] == "repro.faults/v2"
        assert rep["faults"] == [{"kind": "compute_straggler", "rank": 6,
                                  "extra_seconds": 0.5, "scale": 1.0}]
        assert rep["detection"]["exact_hit"] is True
        assert rep["goodput"]["fraction"] < 1

    def test_faults_text_output(self, capsys):
        rc = main(["faults"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "goodput fraction" in out and "detection" in out

    def test_faults_rejects_bad_spec(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["faults", "--fault", "straggler:bogus=1"])
        assert exc.value.code == 2

    def test_faults_exports_trace(self, tmp_path, capsys):
        path = tmp_path / "faults.json"
        rc = main(["faults", "--trace", str(path)])
        capsys.readouterr()
        assert rc == 0
        from repro.obs.trace import assert_valid_trace

        obj = json.loads(path.read_text(encoding="utf-8"))
        assert_valid_trace(obj)
        tagged = [e for e in obj["traceEvents"]
                  if e.get("args", {}).get("tags") == ["faulted"]]
        assert tagged, "trace export lost the 'faulted' tags"
