"""Seeded differential workloads: every engine consumer, in miniature.

Each workload is a function ``fn(sim) -> None`` that drives an engine
exclusively through its public API — ``run``, ``run_collective``,
``advance``, ``record``, ``add_duration_modifier`` — either directly or
through one of the real consumers (the step-graph executor, the fault
workload, the resilience run simulator).  The differential tests run
each workload once against the frozen reference engine and once against
the fast engine and diff every observable (see
:mod:`tests.harness.diffing`).

To add a workload: write a ``wl_*`` function taking a simulator, append
a :class:`Workload` row to ``DIFFERENTIAL_WORKLOADS``, and it is picked
up by the parametrized fixture in ``conftest.py`` automatically.  Keep
workloads deterministic — randomness belongs in the engine fuzzer
(``repro verify --engine``), which shrinks failures; these are the
curated, named scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

from repro.debug.workload import WorkloadSpec, run_synthetic_workload
from repro.faults.models import ComputeStraggler, DegradedLink, FaultPlan
from repro.hardware.cluster import grand_teton
from repro.model.config import LLAMA3_8B
from repro.parallel.config import JobConfig, ParallelConfig, ZeroStage
from repro.parallel.mesh import DeviceMesh
from repro.pp.layout import build_layout
from repro.pp.schedule import ScheduleShape, build_flexible_schedule
from repro.pp.zoo import build_zero_bubble_schedule
from repro.resilience import NoCheckpoint, RunConfig, YoungDaly, simulate_run
from repro.sim.collectives import RetryPolicy
from repro.train.cost import StageCost
from repro.train.executor import execute_pipeline
from repro.train.step import simulate_step


@dataclass(frozen=True)
class Workload:
    """One named differential scenario."""

    name: str
    fn: Callable


# ----------------------------------------------------------------------
# Step graphs on the three standard meshes
# ----------------------------------------------------------------------

#: The three mesh shapes every step-graph scenario in the repo exercises:
#: TP+PP+DP, the 4D shape with CP, and a deeper interleaved pipeline.
STANDARD_MESHES: Tuple[Tuple[str, ParallelConfig, JobConfig, int], ...] = (
    ("tp2_pp2_dp2", ParallelConfig(tp=2, pp=2, dp=2),
     JobConfig(seq=8192, gbs=8, ngpu=8), 8),
    ("tp2_cp2_pp2_dp2", ParallelConfig(tp=2, cp=2, pp=2, dp=2),
     JobConfig(seq=8192, gbs=8, ngpu=16), 16),
    ("tp4_pp4_dp2", ParallelConfig(tp=4, pp=4, dp=2),
     JobConfig(seq=8192, gbs=16, ngpu=32), 32),
)


def _step_workload(parallel: ParallelConfig, job: JobConfig, ngpu: int,
                   **kwargs):
    def fn(sim) -> None:
        simulate_step(LLAMA3_8B, parallel, job, grand_teton(ngpu),
                      sim=sim, **kwargs)
    return fn


def wl_pipeline_interleaved(sim) -> None:
    """Raw pipeline executor: interleaved schedule, synthetic costs."""
    shape = ScheduleShape(pp=4, v=2, nc=2, nmb=8)
    schedule = build_flexible_schedule(shape)
    layout = build_layout(n_layers=16, pp=4, v=2)
    execute_pipeline(
        schedule, layout,
        forward_cost=lambda s: StageCost(0.004 * s.n_layers, 0.001, 0.0005),
        backward_cost=lambda s: StageCost(0.008 * s.n_layers, 0.001, 0.0005),
        p2p_seconds=0.0003,
        sim=sim,
        start_times={0: 0.002},
        rank_compute_scale={2: 1.3},
    )


def wl_pipeline_zero_bubble(sim) -> None:
    """Raw pipeline executor: split-backward schedule — BI on the
    critical path, deferred BW ops filling the drain, with explicit
    asymmetric BI/BW pricing and a straggling rank."""
    shape = ScheduleShape(pp=4, v=1, nc=4, nmb=8)
    schedule = build_zero_bubble_schedule(shape)
    layout = build_layout(n_layers=4, pp=4, v=1)
    execute_pipeline(
        schedule, layout,
        forward_cost=lambda s: StageCost(0.004 * s.n_layers, 0.001, 0.0),
        backward_cost=lambda s: StageCost(0.008 * s.n_layers, 0.001, 0.0),
        backward_input_cost=lambda s: StageCost(
            0.005 * s.n_layers, 0.001, 0.0),
        backward_weight_cost=lambda s: StageCost(
            0.003 * s.n_layers, 0.0, 0.0),
        p2p_seconds=0.0003,
        sim=sim,
        rank_compute_scale={1: 1.2},
    )


# ----------------------------------------------------------------------
# Fault plans and modifiers
# ----------------------------------------------------------------------

_MESH_8 = DeviceMesh(ParallelConfig(tp=2, cp=2, dp=2))
_SPEC = WorkloadSpec(steps=2, layers=3)


def wl_fault_plan(sim) -> None:
    """Synthetic workload under a declarative fault plan (modifiers)."""
    run_synthetic_workload(
        _MESH_8, _SPEC, sim=sim,
        faults=FaultPlan((
            ComputeStraggler(rank=3, extra_seconds=0.4),
            DegradedLink(dim="tp", group=0, scale=2.5),
        )))


def wl_slowdown(sim) -> None:
    """Synthetic workload with the simple per-rank slowdown knob."""
    run_synthetic_workload(_MESH_8, _SPEC, slowdown={1: 0.25, 6: 0.1},
                           sim=sim)


def wl_modifier_chains(sim) -> None:
    """Stateful and mutually-cancelling modifier chains.

    The doubling+halving pair restores the original duration bitwise
    (``(d * 2.0) * 0.5 == d`` for normal floats), pinning the
    ``out != duration`` faulted-tagging rule: restored events must NOT
    be tagged.  The one-shot modifier fires on exactly one event,
    exercising stateful-closure ordering.
    """
    fired = []

    def one_shot(rank, stream, kind, name, duration):
        if not fired and name == "victim":
            fired.append(True)
            return duration + 1.5
        return duration

    sim.add_duration_modifier(one_shot)
    sim.add_duration_modifier(lambda r, s, k, n, d: d * 2.0)
    sim.add_duration_modifier(lambda r, s, k, n, d: d * 0.5)
    for rank in range(4):
        sim.run(rank, "compute", 0.3, "warm")
    sim.run(2, "compute", 0.2, "victim")
    sim.run(2, "compute", 0.2, "victim")  # one-shot already consumed
    sim.run_collective([0, 1, 2, 3], "comm", 0.1, "allreduce")


# ----------------------------------------------------------------------
# Retry ladders and collective edge shapes
# ----------------------------------------------------------------------

def wl_retry_ladders(sim) -> None:
    """Collective timeout→retry→backoff ladders, default + custom policy."""
    a = sim.run(0, "compute", 0.5, "fwd")
    sim.run_collective([0, 1, 2, 3], "comm", 0.2, "ar0",
                       after={0: [a]}, failed_attempts=1)
    policy = RetryPolicy(max_retries=4, timeout_seconds=2.0,
                         backoff_base_seconds=0.25, backoff_multiplier=3.0)
    sim.run_collective([0, 1], "comm", 0.1, "ar1", failed_attempts=3,
                       retry_policy=policy, tags=("grad",))
    sim.run_collective([2, 3], "comm", 0.1, "ar2",
                       skew={2: 0.05}, failed_attempts=2)


def wl_skewed_collectives(sim) -> None:
    """Deps, skew, tags, and single-rank collectives interleaved."""
    deps = {r: [sim.run(r, "compute", 0.1 * (r + 1), f"fwd{r}")]
            for r in range(4)}
    sim.run_collective([0, 1, 2, 3], "comm", 0.3, "ag",
                       after=deps, skew={1: 0.07}, tags=("fsdp",))
    sim.run_collective([2], "comm", 0.2, "solo")
    sim.run_collective([3, 0], "comm", 0.15, "pair")  # unsorted ranks
    for r in range(4):
        sim.run(r, "compute", 0.05, "tail", after=[deps[r][0]])


# ----------------------------------------------------------------------
# Timeline splicing edge cases
# ----------------------------------------------------------------------

def wl_record_splices(sim) -> None:
    """record() splices interleaved with run(), advance(), zero-duration
    tasks — the trace-merge code path."""
    event_cls = type(sim.run(0, "compute", 0.2, "a"))
    sim.record(event_cls("spliced", "comm", 0, "compute", 0.05, 0.45,
                         (), ("merged",)))
    b = sim.run(0, "compute", 0.1, "b")  # starts at the splice's end
    sim.record(event_cls("zero", "compute", 1, "compute", 0.0, 0.0))
    sim.run(1, "compute", 0.0, "zero2", after=[b])
    sim.advance(1, "compute", 2.0)
    sim.run(1, "compute", 0.1, "late")
    sim.advance(2, "p2p", 0.5)  # advance on a never-used stream
    sim.record(event_cls("back_in_time", "comm", 0, "compute", 0.0, 0.1))


# ----------------------------------------------------------------------
# Resilience runs (multi-step, retries, aborts, markers)
# ----------------------------------------------------------------------

def wl_resilience_run(sim) -> None:
    """Multi-step resilience run: failure markers, retry ladders,
    checkpoint/restart segments recorded into one timeline."""
    simulate_run(
        LLAMA3_8B, JobConfig(seq=8192, gbs=32, ngpu=32), grand_teton(32),
        RunConfig(steps=25, mtbf_seconds=150.0, seed=11, elastic=False,
                  replacement_seconds=300.0, policy=YoungDaly()),
        sim=sim)


def wl_resilience_no_checkpoint(sim) -> None:
    simulate_run(
        LLAMA3_8B, JobConfig(seq=8192, gbs=32, ngpu=32), grand_teton(32),
        RunConfig(steps=15, mtbf_seconds=120.0, seed=3, elastic=True,
                  policy=NoCheckpoint(), max_step_attempts=80),
        sim=sim)


DIFFERENTIAL_WORKLOADS: Tuple[Workload, ...] = tuple(
    [Workload(f"step_{name}", _step_workload(par, job, ngpu))
     for name, par, job, ngpu in STANDARD_MESHES]
    + [
        Workload("step_faulted", _step_workload(
            *STANDARD_MESHES[0][1:],
            fault_plan=FaultPlan((
                ComputeStraggler(rank=2, extra_seconds=0.002),)))),
        Workload("step_zero3_recompute", _step_workload(
            ParallelConfig(tp=2, pp=2, dp=2, zero=ZeroStage.ZERO_3),
            JobConfig(seq=8192, gbs=8, ngpu=8), 8, recompute=True)),
        Workload("step_zero_bubble", _step_workload(
            *STANDARD_MESHES[0][1:], schedule_kind="zero-bubble")),
        Workload("step_heterogeneous_vit", _step_workload(
            *STANDARD_MESHES[0][1:], stage_preset="vit-encoder")),
        Workload("pipeline_interleaved", wl_pipeline_interleaved),
        Workload("pipeline_zero_bubble", wl_pipeline_zero_bubble),
        Workload("fault_plan", wl_fault_plan),
        Workload("slowdown", wl_slowdown),
        Workload("modifier_chains", wl_modifier_chains),
        Workload("retry_ladders", wl_retry_ladders),
        Workload("skewed_collectives", wl_skewed_collectives),
        Workload("record_splices", wl_record_splices),
        Workload("resilience_run", wl_resilience_run),
        Workload("resilience_no_checkpoint", wl_resilience_no_checkpoint),
    ]
)


# ----------------------------------------------------------------------
# Rank-symmetry folding scenarios
# ----------------------------------------------------------------------

def wl_fold_replica(sim, offset: int) -> None:
    """One DP replica's worth of submissions, shifted by ``offset``.

    The fold tests submit this once (offset 0) into a folded fast
    engine and once per replica (offset = k * stride) into the
    reference, then diff the fanned-out timelines.
    """
    ranks = [offset + r for r in range(4)]
    prev = {}
    for step in range(3):
        for r in ranks:
            prev[r] = sim.run(r, "compute", 0.2 + 0.01 * (r - offset),
                              f"fwd:s{step}")
        sim.run_collective(ranks, "tp", 0.05, f"ag:s{step}",
                           after={r: [prev[r]] for r in ranks})
        sim.run_collective(ranks[:2], "tp", 0.03, f"rs_a:s{step}")
        sim.run_collective(ranks[2:], "tp", 0.03, f"rs_b:s{step}")
    sim.run(ranks[1], "compute", 0.0, "zero")


#: (name, replicas, stride, fn(sim, offset)).
FOLD_WORKLOADS: Tuple[Tuple[str, int, int, Callable], ...] = (
    ("dp8_replicas", 8, 4, wl_fold_replica),
    ("dp1_degenerate", 1, 4, wl_fold_replica),
)
