"""Field-by-field diffing of two engine timelines.

All comparisons are *bitwise*: floats must match exactly (including the
sign of zero), because the fast engine's contract is that it performs
the same arithmetic in the same order as the reference, not merely
arithmetic that lands within a tolerance.  Diffs are returned as
human-readable strings naming the first divergent event index and
field, so an equivalence failure reads as a bug report.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

EVENT_FIELDS: Tuple[str, ...] = (
    "name", "kind", "rank", "stream", "start", "end", "group", "tags")

#: Cap on reported divergences, so a systematically wrong timeline
#: produces a readable failure instead of a million lines.
MAX_DIFFS = 20


def floats_identical(a: float, b: float) -> bool:
    """Bitwise float equality: exact value AND sign of zero."""
    if a != b:
        return False
    if a == 0.0:
        return math.copysign(1.0, a) == math.copysign(1.0, b)
    return True


def _values_identical(a: object, b: object) -> bool:
    if isinstance(a, float) or isinstance(b, float):
        return isinstance(a, (int, float)) and isinstance(b, (int, float)) \
            and floats_identical(float(a), float(b))
    return a == b


def diff_event_lists(
    ref_events: Sequence[object],
    fast_events: Sequence[object],
    label: str = "events",
) -> List[str]:
    """Every field-level divergence between two event streams (capped)."""
    problems: List[str] = []
    if len(ref_events) != len(fast_events):
        problems.append(
            f"{label}: length {len(ref_events)} (reference) != "
            f"{len(fast_events)} (fast)")
    for i, (r, f) in enumerate(zip(ref_events, fast_events)):
        for field in EVENT_FIELDS:
            rv, fv = getattr(r, field), getattr(f, field)
            if not _values_identical(rv, fv):
                problems.append(
                    f"{label}[{i}].{field}: reference={rv!r} fast={fv!r} "
                    f"(event {r.name!r} on rank {r.rank} "
                    f"stream {r.stream!r})")
                if len(problems) >= MAX_DIFFS:
                    return problems
    return problems


def _pair_key(pair: Tuple[object, object]) -> tuple:
    a, b = pair
    return (a.rank, a.stream, a.start, a.end, a.name,
            b.start, b.end, b.name)


def compare_simulators(
    ref,
    fast,
    ranks: Optional[Sequence[int]] = None,
    streams: Optional[Sequence[str]] = None,
    check_overlaps: bool = True,
) -> List[str]:
    """Full observable-behaviour diff of two engines fed the same inputs.

    Compares the event stream field-by-field, the global and per-rank
    makespans, per-(rank, stream) busy/idle/now, the indexed
    ``events_for`` views, and (optionally) the overlap-pair report as a
    multiset — i.e. every public inspection surface of the engine.
    Returns a list of problem strings; empty means equivalent.
    """
    problems = diff_event_lists(ref.events, fast.events)
    if problems:
        return problems  # per-field diffs make later checks redundant

    if not floats_identical(ref.makespan(), fast.makespan()):
        problems.append(
            f"makespan: reference={ref.makespan()!r} fast={fast.makespan()!r}")

    if ranks is None:
        ranks = sorted({e.rank for e in ref.events})
    if streams is None:
        streams = sorted({e.stream for e in ref.events})

    for rank in ranks:
        if not floats_identical(ref.makespan([rank]), fast.makespan([rank])):
            problems.append(
                f"makespan([{rank}]): reference={ref.makespan([rank])!r} "
                f"fast={fast.makespan([rank])!r}")
        ref_rank_events = ref.events_for(rank)
        fast_rank_events = fast.events_for(rank)
        problems.extend(diff_event_lists(
            ref_rank_events, fast_rank_events, label=f"events_for({rank})"))
        for stream in streams:
            for check, ref_v, fast_v in (
                ("busy_time", ref.busy_time(rank, stream),
                 fast.busy_time(rank, stream)),
                ("idle_time", ref.idle_time(rank, stream),
                 fast.idle_time(rank, stream)),
                ("now", ref.now(rank, stream), fast.now(rank, stream)),
            ):
                if not floats_identical(ref_v, fast_v):
                    problems.append(
                        f"{check}({rank}, {stream!r}): reference={ref_v!r} "
                        f"fast={fast_v!r}")
            problems.extend(diff_event_lists(
                ref.events_for(rank, stream=stream),
                fast.events_for(rank, stream=stream),
                label=f"events_for({rank}, {stream!r})"))
        if len(problems) >= MAX_DIFFS:
            return problems[:MAX_DIFFS]

    if check_overlaps:
        # Pair *content* must match; emission order is not part of the
        # contract (the fast engine iterates streams in creation order,
        # the reference in first-event order).
        ref_pairs = sorted(map(_pair_key, ref.overlapping_events()))
        fast_pairs = sorted(map(_pair_key, fast.overlapping_events()))
        if ref_pairs != fast_pairs:
            problems.append(
                f"overlapping_events: reference={ref_pairs!r} "
                f"fast={fast_pairs!r}")
    return problems
