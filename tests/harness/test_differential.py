"""Differential equivalence tests: fast engine == frozen reference.

Every workload runs through both engines; every observable — each
``TraceEvent`` field, makespans (global and per-rank), busy/idle per
stream, the indexed ``events_for`` views, overlap reports, and
``repro.analysis`` critical paths — must match the reference bitwise.
"""

from __future__ import annotations

import pytest

from repro.analysis.critical_path import extract_critical_path
from repro.hardware.cluster import grand_teton
from repro.model.config import LLAMA3_8B
from repro.sim.engine import RankFold, Simulator
from repro.train.step import simulate_step
from tests.harness.diffing import compare_simulators, floats_identical
from tests.harness.reference_engine import ReferenceSimulator
from tests.harness.workloads import FOLD_WORKLOADS, STANDARD_MESHES


class TestWorkloadEquivalence:
    def test_bitwise_equivalent(self, engine_pair):
        reference, fast = engine_pair
        problems = compare_simulators(reference, fast)
        assert not problems, "\n".join(problems)

    def test_workloads_are_nontrivial(self, engine_pair):
        # Guard against a harness regression silently comparing two
        # empty timelines.
        reference, _ = engine_pair
        assert len(reference.events) > 0


class TestCriticalPathEquivalence:
    @pytest.mark.parametrize(
        "name,parallel,job,ngpu", STANDARD_MESHES,
        ids=[m[0] for m in STANDARD_MESHES])
    def test_critical_paths_identical(self, name, parallel, job, ngpu):
        cluster = grand_teton(ngpu)
        ref_sim = ReferenceSimulator()
        fast_sim = Simulator()
        ref_rep = simulate_step(LLAMA3_8B, parallel, job, cluster,
                                sim=ref_sim)
        fast_rep = simulate_step(LLAMA3_8B, parallel, job, cluster,
                                 sim=fast_sim)
        ref_path = extract_critical_path(
            ref_rep.execution.graph, ref_rep.execution.events)
        fast_path = extract_critical_path(
            fast_rep.execution.graph, fast_rep.execution.events)
        assert ref_path.exact and fast_path.exact
        assert floats_identical(ref_path.makespan_seconds,
                                fast_path.makespan_seconds)
        assert ref_path.entries == fast_path.entries
        assert ref_path.near_critical == fast_path.near_critical
        assert ref_path.slack_by_uid == fast_path.slack_by_uid


class TestFoldEquivalence:
    """Folded fast engine == reference replaying every replica explicitly."""

    @pytest.mark.parametrize(
        "name,replicas,stride,fn", FOLD_WORKLOADS,
        ids=[w[0] for w in FOLD_WORKLOADS])
    def test_fold_matches_explicit_replicas(self, name, replicas, stride, fn):
        reference = ReferenceSimulator()
        for k in range(replicas):
            fn(reference, k * stride)

        folded = Simulator(fold=RankFold(replicas=replicas, stride=stride))
        fn(folded, 0)

        problems = compare_simulators(
            reference, folded,
            ranks=range(replicas * stride))
        assert not problems, "\n".join(problems)

    def test_fold_rejects_out_of_replica_ranks(self):
        sim = Simulator(fold=RankFold(replicas=4, stride=2))
        with pytest.raises(ValueError, match="base replica"):
            sim.run(2, "compute", 1.0, "oops")
        with pytest.raises(ValueError, match="base replica"):
            sim.run_collective([0, 3], "comm", 1.0, "oops")

    def test_fold_unseen_rank_reads_zero(self):
        sim = Simulator(fold=RankFold(replicas=2, stride=4))
        sim.run(0, "compute", 1.0, "a")
        # Rank 9 is outside the folded world: same answers as an
        # unfolded engine gives for a never-seen rank.
        assert sim.now(9, "compute") == 0.0
        assert sim.events_for(9) == []
        assert sim.busy_time(9) == 0.0


class TestEngineFuzzEquivalence:
    """The acceptance bar: >= 500 random submission sequences diffed."""

    @pytest.mark.slow
    def test_fuzz_500_sequences(self):
        from repro.verify.engine_fuzz import EngineFuzzConfig, run_engine_fuzz

        result = run_engine_fuzz(EngineFuzzConfig(cases=500, seed=0))
        assert result.cases_run == 500
        assert not result.failures, result.failures[0].describe()
