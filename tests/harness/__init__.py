"""Differential equivalence harness for the fast simulator engine.

The fast path in :mod:`repro.sim.engine` is pinned to the exact
semantics of the engine the repository shipped before the optimisation,
frozen verbatim in :mod:`tests.harness.reference_engine`.  This package
replays every seeded workload (:mod:`tests.harness.workloads`) through
both engines and asserts **bitwise** equality of every
:class:`TraceEvent` field, makespans, busy/idle accounting, and
:mod:`repro.analysis` critical paths — see ``docs/engine.md`` for the
contract and how to add a workload.
"""

from tests.harness.diffing import compare_simulators, diff_event_lists
from tests.harness.reference_engine import (
    ReferenceSimulator,
    ReferenceTraceEvent,
)

__all__ = [
    "ReferenceSimulator",
    "ReferenceTraceEvent",
    "compare_simulators",
    "diff_event_lists",
]
