"""FROZEN reference engine — the pre-fast-path ``repro.sim.engine``, verbatim.

This module is the differential-testing oracle for the fast engine: it is
the exact simulator implementation the repository shipped before the
fast-path refactor, copied here unchanged (only this header and the class
alias at the bottom were added).  Do NOT edit it to track engine changes —
its whole value is that it does not move.  The harness in this package
replays every seeded workload through both engines and asserts bitwise
equality of the resulting ``TraceEvent`` streams, makespans, and busy/idle
accounting; ``repro verify --engine`` fuzzes random submission sequences
against it (see ``docs/engine.md`` for the equivalence contract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.collectives import DEFAULT_RETRY_POLICY, RetryPolicy

StreamKey = Tuple[int, str]

#: Duration-modifier hook: ``(rank, stream, kind, name, duration)`` -> new
#: duration.  Modifiers may be stateful closures (one-shot hangs, periodic
#: jitter); they run in registration order, each seeing the previous one's
#: output.
DurationModifier = Callable[[int, str, str, str, float], float]


@dataclass(frozen=True)
class TraceEvent:
    """One completed task on one rank's stream.

    Attributes:
        name: Operation name, e.g. ``"fwd:mb3:vs1"`` or ``"allgather:kv"``.
        kind: Category used by trace analysis: ``"compute"``,
            ``"comm"``, or ``"exposed_comm"``.
        rank: Global rank the event ran on.
        stream: Stream name within the rank.
        start: Start timestamp in seconds.
        end: End timestamp in seconds.
        group: Optional tuple of participant ranks for collectives.
        tags: Free-form labels; the engine adds ``"faulted"`` to any event
            whose duration a registered modifier changed.
    """

    name: str
    kind: str
    rank: int
    stream: str
    start: float
    end: float
    group: Tuple[int, ...] = ()
    tags: Tuple[str, ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "TraceEvent") -> bool:
        """Whether two events overlap in wall-clock time."""
        return self.start < other.end and other.start < self.end


class Simulator:
    """Timeline simulator over (rank, stream) resources.

    Example:
        >>> sim = Simulator()
        >>> a = sim.run(rank=0, stream="compute", duration=1.0, name="fwd")
        >>> b = sim.run(rank=1, stream="compute", duration=1.0, name="fwd",
        ...             after=[a])
        >>> b.start
        1.0
    """

    def __init__(self) -> None:
        self._free_at: Dict[StreamKey, float] = {}
        self._events: List[TraceEvent] = []
        self._modifiers: List[DurationModifier] = []

    # ------------------------------------------------------------------
    # Fault hooks
    # ------------------------------------------------------------------

    def add_duration_modifier(self, modifier: DurationModifier) -> None:
        """Register a per-rank duration modifier (fault injection).

        Every subsequent :meth:`run` and :meth:`run_collective` duration
        flows through the chain; see :data:`DurationModifier`.
        """
        self._modifiers.append(modifier)

    def _modified_duration(
        self, rank: int, stream: str, kind: str, name: str, duration: float
    ) -> Tuple[float, bool]:
        """Duration after the modifier chain, plus whether it changed."""
        out = duration
        for modifier in self._modifiers:
            out = modifier(rank, stream, kind, name, out)
        if out < 0:
            raise ValueError(
                f"duration modifier made task {name!r} negative ({out})")
        return out, out != duration

    @staticmethod
    def _tagged(tags: Tuple[str, ...], faulted: bool) -> Tuple[str, ...]:
        if faulted and "faulted" not in tags:
            return tags + ("faulted",)
        return tags

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------

    def run(
        self,
        rank: int,
        stream: str,
        duration: float,
        name: str,
        kind: str = "compute",
        after: Optional[Sequence[TraceEvent]] = None,
        not_before: float = 0.0,
        tags: Tuple[str, ...] = (),
    ) -> TraceEvent:
        """Run one task on a single rank's stream and return its event.

        The task starts when the stream is free, every event in ``after``
        has finished, and ``not_before`` has passed.
        """
        if duration < 0:
            raise ValueError(f"negative duration for task {name!r}")
        duration, faulted = self._modified_duration(
            rank, stream, kind, name, duration)
        key = (rank, stream)
        ready = max(
            self._free_at.get(key, 0.0),
            not_before,
            max((dep.end for dep in after or ()), default=0.0),
        )
        event = TraceEvent(
            name=name, kind=kind, rank=rank, stream=stream,
            start=ready, end=ready + duration,
            tags=self._tagged(tuple(tags), faulted),
        )
        self._free_at[key] = event.end
        self._events.append(event)
        return event

    def run_collective(
        self,
        ranks: Sequence[int],
        stream: str,
        duration: float,
        name: str,
        after: Optional[Dict[int, Sequence[TraceEvent]]] = None,
        kind: str = "comm",
        skew: Optional[Dict[int, float]] = None,
        tags: Tuple[str, ...] = (),
        failed_attempts: int = 0,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> Dict[int, TraceEvent]:
        """Run a synchronising collective across ``ranks``.

        Every participant joins at its own ready time; the collective's
        payload transfer begins only once the **slowest** participant has
        joined (this is what makes slow-rank localisation, Section 6.1,
        possible: fast ranks show long collectives).  ``skew`` adds a
        per-rank extra delay before joining, used for fault injection.

        Registered duration modifiers apply per participant: the payload
        transfer takes the **maximum** of the per-rank modified durations,
        so one rank's degraded link slows the whole collective, and only
        the perturbed participants are tagged ``"faulted"``.

        ``failed_attempts`` plays out the timeout→retry→backoff ladder of
        ``retry_policy`` (default :data:`~repro.sim.collectives.
        DEFAULT_RETRY_POLICY`) before the successful attempt: each failed
        attempt occupies the stream for the policy's watchdog timeout and
        is tagged ``"retry"``, each backoff gap is tagged
        ``("retry", "backoff")``.  Raises ``ValueError`` if the policy's
        retry budget cannot absorb that many failures — the caller is
        expected to model a job abort instead (:mod:`repro.resilience`).

        Returns one event per rank for the **successful** attempt,
        spanning [join, collective end], so a rank's event duration
        includes its wait for stragglers.
        """
        if failed_attempts < 0:
            raise ValueError("failed_attempts must be >= 0")
        if failed_attempts:
            policy = retry_policy or DEFAULT_RETRY_POLICY
            if policy.exhausted_by(failed_attempts):
                raise ValueError(
                    f"collective {name!r}: {failed_attempts} failed attempts "
                    f"exceed the retry budget (max_retries="
                    f"{policy.max_retries}); model an abort instead")
            for attempt in range(failed_attempts):
                self._run_collective_once(
                    ranks, stream, policy.timeout_seconds,
                    f"{name}#try{attempt}", after, kind, skew,
                    tags + ("retry",))
                # Later attempts are gated by stream order alone.
                after = None
                skew = None
                backoff = policy.backoff_seconds(attempt)
                if backoff > 0:
                    for rank in ranks:
                        self.run(
                            rank, stream, backoff, f"{name}#backoff{attempt}",
                            kind=kind, tags=tags + ("retry", "backoff"))
        return self._run_collective_once(
            ranks, stream, duration, name, after, kind, skew, tags)

    def _run_collective_once(
        self,
        ranks: Sequence[int],
        stream: str,
        duration: float,
        name: str,
        after: Optional[Dict[int, Sequence[TraceEvent]]],
        kind: str,
        skew: Optional[Dict[int, float]],
        tags: Tuple[str, ...],
    ) -> Dict[int, TraceEvent]:
        if not ranks:
            raise ValueError("collective needs at least one rank")
        if len(set(ranks)) != len(ranks):
            raise ValueError(f"duplicate ranks in collective {name!r}")
        after = after or {}
        skew = skew or {}
        rank_durations = {}
        rank_faulted = {}
        for rank in ranks:
            rank_durations[rank], rank_faulted[rank] = \
                self._modified_duration(rank, stream, kind, name, duration)
        join_times = {}
        for rank in ranks:
            key = (rank, stream)
            deps_end = max((dep.end for dep in after.get(rank, ())), default=0.0)
            join_times[rank] = (
                max(self._free_at.get(key, 0.0), deps_end) + skew.get(rank, 0.0)
            )
        start = max(join_times.values())
        end = start + max(rank_durations.values())
        events = {}
        for rank in ranks:
            event = TraceEvent(
                name=name, kind=kind, rank=rank, stream=stream,
                start=join_times[rank], end=end, group=tuple(ranks),
                tags=self._tagged(tuple(tags), rank_faulted[rank]),
            )
            self._free_at[(rank, stream)] = end
            self._events.append(event)
            events[rank] = event
        return events

    def advance(self, rank: int, stream: str, until: float) -> None:
        """Force a stream to be busy until a given time (models stalls)."""
        key = (rank, stream)
        self._free_at[key] = max(self._free_at.get(key, 0.0), until)

    def record(self, event: TraceEvent) -> None:
        """Append an externally-timed event, advancing its stream.

        Used to splice timelines together (e.g. merging per-phase traces);
        the event's own start/end are trusted as-is.
        """
        if event.end < event.start:
            raise ValueError(f"event {event.name!r} ends before it starts")
        key = (event.rank, event.stream)
        self._free_at[key] = max(self._free_at.get(key, 0.0), event.end)
        self._events.append(event)

    # ------------------------------------------------------------------
    # Inspection API
    # ------------------------------------------------------------------

    @property
    def events(self) -> List[TraceEvent]:
        """All recorded events, in submission order."""
        return list(self._events)

    def now(self, rank: int, stream: str) -> float:
        """Time at which a stream becomes free."""
        return self._free_at.get((rank, stream), 0.0)

    def makespan(self, ranks: Optional[Iterable[int]] = None) -> float:
        """Latest end time across the given ranks (or all ranks)."""
        rank_set = set(ranks) if ranks is not None else None
        ends = [
            e.end for e in self._events
            if rank_set is None or e.rank in rank_set
        ]
        return max(ends, default=0.0)

    def events_for(
        self, rank: int, stream: Optional[str] = None, kind: Optional[str] = None
    ) -> List[TraceEvent]:
        """Events on one rank, optionally filtered by stream and kind."""
        return [
            e for e in self._events
            if e.rank == rank
            and (stream is None or e.stream == stream)
            and (kind is None or e.kind == kind)
        ]

    def overlapping_events(
        self,
    ) -> List[Tuple[TraceEvent, TraceEvent]]:
        """Pairs of events that overlap in time on the same (rank, stream).

        A correct timeline never has any: each (rank, stream) models one
        serially-executing CUDA stream.  The ``submit-in-causal-order``
        contract makes overlap impossible through :meth:`run`, but
        :meth:`record` trusts caller-supplied times, so spliced timelines
        can violate it — this is the raw check behind the
        ``stream-overlap`` invariant in :mod:`repro.verify.invariants`.
        """
        by_stream: Dict[StreamKey, List[TraceEvent]] = {}
        for e in self._events:
            by_stream.setdefault((e.rank, e.stream), []).append(e)
        offenders: List[Tuple[TraceEvent, TraceEvent]] = []
        for events in by_stream.values():
            ordered = sorted(events, key=lambda e: (e.start, e.end))
            active: Optional[TraceEvent] = None  # max-end event so far
            for cur in ordered:
                if active is not None and active.overlaps(cur):
                    offenders.append((active, cur))
                if active is None or cur.end > active.end:
                    active = cur
        return offenders

    def busy_time(self, rank: int, stream: str = "compute") -> float:
        """Total busy duration on a stream (events never overlap per stream)."""
        return sum(e.duration for e in self.events_for(rank, stream))

    def idle_time(self, rank: int, stream: str = "compute") -> float:
        """Makespan minus busy time on one rank's stream."""
        return self.makespan() - self.busy_time(rank, stream)


#: Explicit oracle aliases, so harness code reads unambiguously.
ReferenceSimulator = Simulator
ReferenceTraceEvent = TraceEvent
