"""Fixtures for the differential equivalence harness.

``engine_pair`` is the satellite fixture the issue asks for: it is
parametrized over every workload in
:data:`tests.harness.workloads.DIFFERENTIAL_WORKLOADS`, runs the
workload through both the frozen reference engine and the fast engine,
and yields the two simulators for diffing.  Adding a row to
``DIFFERENTIAL_WORKLOADS`` automatically adds a test case.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from tests.harness.reference_engine import ReferenceSimulator
from tests.harness.workloads import DIFFERENTIAL_WORKLOADS


@pytest.fixture(params=DIFFERENTIAL_WORKLOADS, ids=lambda w: w.name)
def engine_pair(request):
    """(reference_sim, fast_sim) after running one workload through both."""
    workload = request.param
    reference = ReferenceSimulator()
    fast = Simulator()
    workload.fn(reference)
    workload.fn(fast)
    return reference, fast
