"""Tests for the step-graph lowering layer and the one-timeline step.

Covers the Section 7.3.1 acceptance behavior: FSDP all-gathers land on
their own simulator stream and overlap forward compute, the step time is
the timeline makespan (no scalar add-ons), and the step-graph invariant
checkers pass on clean timelines and catch tampered ones.
"""

import pytest

from repro.hardware.cluster import grand_teton
from repro.model.config import LLAMA3_8B
from repro.obs.metrics import MetricsRegistry, record_comm_overlap_metrics
from repro.parallel.config import JobConfig, ParallelConfig, ZeroStage
from repro.parallel.planner import plan_parallelism
from repro.pp.analysis import default_nc
from repro.train.lowering import STREAM_OF_KIND, StepOpKind
from repro.train.step import simulate_step
from repro.verify.invariants import run_step_invariants


def _small_step(zero=ZeroStage.ZERO_2, pp=2, **kwargs):
    par = ParallelConfig(tp=2, cp=1, pp=pp,
                         dp=max(8 // (2 * pp), 1), zero=zero)
    job = JobConfig(seq=8192, gbs=8, ngpu=par.world_size)
    rep = simulate_step(LLAMA3_8B, par, job, grand_teton(par.world_size),
                        **kwargs)
    return rep, par, job


class TestFsdpOverlap:
    def test_allgather_overlaps_forward_compute(self):
        """Acceptance: in a pp=2 step, FSDP all-gather events sit on the
        ``fsdp`` stream and overlap forward compute (Section 7.3.1)."""
        rep, _, _ = _small_step(pp=2)
        execution = rep.execution
        gathers = execution.events_of_kind(StepOpKind.FSDP_ALLGATHER)
        assert gathers, "no FSDP all-gather events on the timeline"
        assert all(e.stream == "fsdp" and e.kind == "comm"
                   for e in gathers)
        computes = [
            e for e in execution.events_of_kind(StepOpKind.COMPUTE)
            if e.name.startswith("F:")
        ]
        assert any(
            ag.rank == c.rank and ag.overlaps(c)
            for ag in gathers for c in computes
        ), "no FSDP all-gather overlapped forward compute"

    def test_only_head_and_tail_exposed(self):
        """The first all-gather delays the pipeline start; everything else
        is prefetched under compute (the paper's overlap claim)."""
        rep, _, _ = _small_step(pp=2)
        assert rep.exposed_fsdp_seconds < rep.run.makespan * 0.25
        assert rep.exposed_fsdp_seconds > 0.0

    def test_zero3_regathers_per_round(self):
        rep3, par, job = _small_step(zero=ZeroStage.ZERO_3)
        rep1, _, _ = _small_step(zero=ZeroStage.ZERO_1)
        nmb = job.micro_batches(par)
        rounds = -(-nmb // default_nc(par.pp, nmb))
        per_stage_3 = len(rep3.execution.events_of_kind(
            StepOpKind.FSDP_ALLGATHER))
        per_stage_1 = len(rep1.execution.events_of_kind(
            StepOpKind.FSDP_ALLGATHER))
        assert per_stage_3 == per_stage_1 * rounds


class TestMakespanIsStepTime:
    def test_no_scalar_addons(self):
        """The step time IS the simulator makespan."""
        rep, _, _ = _small_step()
        assert rep.step_seconds == pytest.approx(rep.run.sim.makespan())

    def test_decomposition_is_exact(self):
        rep, _, _ = _small_step()
        assert rep.step_seconds == pytest.approx(
            rep.pipeline_seconds + rep.exposed_fsdp_seconds
            + rep.optimizer_seconds)

    def test_streams_by_kind(self):
        rep, _, _ = _small_step()
        for op in rep.execution.graph.ops():
            assert op.stream == STREAM_OF_KIND[op.kind]
            event = rep.execution.events[op.uid]
            assert event.stream == op.stream

    def test_mfu_and_tokens_per_second(self):
        rep, _, job = _small_step()
        assert 0.0 < rep.mfu < 1.0
        assert rep.tokens_per_second == pytest.approx(
            job.tokens_per_step / rep.step_seconds)


class TestStepInvariants:
    def _report(self, rep, par, job, zero):
        nc = default_nc(par.pp, job.micro_batches(par))
        return run_step_invariants(
            rep.execution.graph, rep.execution.events, zero=zero, nc=nc)

    @pytest.mark.parametrize(
        "zero", (ZeroStage.ZERO_1, ZeroStage.ZERO_2, ZeroStage.ZERO_3))
    def test_clean_timelines_pass(self, zero):
        rep, par, job = _small_step(zero=zero)
        inv = self._report(rep, par, job, zero)
        assert inv.ok, [v.message for v in inv.violations]
        assert "fsdp-zero-pairing" in inv.checks_run

    def test_late_allgather_caught(self):
        rep, par, job = _small_step()
        events = dict(rep.execution.events)
        uid = next(op.uid for op in rep.execution.graph.ops()
                   if op.kind is StepOpKind.FSDP_ALLGATHER)
        late = rep.step_seconds + 1.0
        events[uid] = events[uid].replace(
            start=late, end=late + events[uid].duration)
        inv = run_step_invariants(rep.execution.graph, events)
        assert not inv.ok
        assert {"fsdp-allgather-before-use", "step-dep-ordering"} <= {
            v.check for v in inv.violations}

    def test_missing_optimizer_event_caught(self):
        rep, par, job = _small_step()
        events = dict(rep.execution.events)
        uid = next(op.uid for op in rep.execution.graph.ops()
                   if op.kind is StepOpKind.OPTIMIZER)
        del events[uid]
        inv = run_step_invariants(rep.execution.graph, events)
        assert any(v.check == "step-dep-ordering" and "never executed"
                   in v.message for v in inv.violations)


class TestCommOverlapMetrics:
    def test_total_splits_into_overlapped_plus_exposed(self):
        rep, par, _ = _small_step()
        reg = record_comm_overlap_metrics(rep.run.sim)
        total = reg.gauge("comm.total_seconds")
        overlapped = reg.gauge("comm.overlapped_seconds")
        exposed = reg.gauge("comm.exposed_seconds")
        for row in total.sample_rows():
            labels = {k: v for k, v in row["labels"].items()}
            assert row["value"] == pytest.approx(
                overlapped.value(**labels) + exposed.value(**labels))

    def test_fsdp_prefetch_counted_as_overlapped(self):
        rep, par, _ = _small_step()
        reg = record_comm_overlap_metrics(rep.run.sim)
        hidden = sum(
            row["value"]
            for row in reg.gauge("comm.overlapped_seconds").sample_rows()
            if row["labels"]["stream"] == "fsdp")
        assert hidden > 0.0


class TestCostAwarePlanner:
    def test_candidates_ranked_by_simulated_tflops(self):
        job = JobConfig(seq=8192, gbs=64, ngpu=64)
        plan = plan_parallelism(LLAMA3_8B, job, grand_teton(64),
                                cost_aware=True)
        assert plan.candidates
        feasible = [c for c in plan.candidates if c["feasible"]]
        assert feasible, "no feasible candidate at toy scale"
        tflops = [c["tflops_per_gpu"] for c in feasible]
        assert tflops == sorted(tflops, reverse=True)
        best = feasible[0]
        p = plan.parallel
        assert (p.tp, p.pp, p.cp, p.dp) == (
            best["tp"], best["pp"], best["cp"], best["dp"])
        assert any("cost-aware" in line for line in plan.rationale)

    def test_default_mode_has_no_candidates(self):
        job = JobConfig(seq=8192, gbs=64, ngpu=64)
        plan = plan_parallelism(LLAMA3_8B, job, grand_teton(64))
        assert plan.candidates == []
