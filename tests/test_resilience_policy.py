"""Checkpoint policies, checkpoint pricing, and the failure process."""

import math

import pytest

from repro.hardware.cluster import grand_teton
from repro.model.config import LLAMA3_8B, LLAMA3_70B
from repro.model.flops import model_params
from repro.model.memory import training_state_bytes
from repro.resilience import (
    FAILURE_KINDS,
    FailureProcess,
    FixedInterval,
    NoCheckpoint,
    YoungDaly,
    checkpoint_bytes,
    checkpoint_read_seconds,
    checkpoint_write_seconds,
    parse_policy,
    shard_transfer_seconds,
)

CLUSTER = grand_teton(32)


class TestCheckpointPricing:
    def test_payload_is_weights_plus_optimizer_state(self):
        # BF16 weights (2 B/param) + FP32 master/Adam state (12 B/param).
        assert checkpoint_bytes(LLAMA3_8B) == pytest.approx(
            14 * model_params(LLAMA3_8B))
        assert training_state_bytes(LLAMA3_70B) > training_state_bytes(
            LLAMA3_8B)

    def test_write_shards_across_nodes(self):
        # Twice the nodes write the same payload twice as fast.
        assert checkpoint_write_seconds(LLAMA3_8B, CLUSTER, 16) \
            == pytest.approx(
                2 * checkpoint_write_seconds(LLAMA3_8B, CLUSTER, 32))

    def test_write_bounded_by_per_node_bandwidth(self):
        nodes = 32 // CLUSTER.gpus_per_node
        expected = (checkpoint_bytes(LLAMA3_8B) / nodes
                    / CLUSTER.checkpoint_bandwidth_per_node())
        assert checkpoint_write_seconds(LLAMA3_8B, CLUSTER, 32) \
            == pytest.approx(expected)

    def test_read_symmetric_to_write(self):
        assert checkpoint_read_seconds(LLAMA3_8B, CLUSTER, 32) \
            == checkpoint_write_seconds(LLAMA3_8B, CLUSTER, 32)

    def test_invalid_ngpu_rejected(self):
        with pytest.raises(ValueError):
            checkpoint_write_seconds(LLAMA3_8B, CLUSTER, 0)


class TestShardTransferDegenerates:
    """Satellite: degenerate pricing inputs get well-defined answers —
    zero bytes transfer in zero seconds, zero bandwidth is a clear
    ValueError, never a ZeroDivisionError."""

    def test_zero_bytes_is_free(self):
        assert shard_transfer_seconds(0.0, 4, 1e9) == 0.0
        assert checkpoint_write_seconds(LLAMA3_8B, CLUSTER, 32,
                                        payload_bytes=0.0) == 0.0
        assert checkpoint_read_seconds(LLAMA3_8B, CLUSTER, 32,
                                       payload_bytes=0.0) == 0.0

    def test_zero_bytes_never_touches_the_bandwidth(self):
        # Even a broken (zero) bandwidth is fine when nothing moves.
        assert shard_transfer_seconds(0.0, 4, 0.0) == 0.0

    def test_zero_bandwidth_is_a_clear_error(self):
        with pytest.raises(ValueError) as err:
            shard_transfer_seconds(1e9, 4, 0.0)
        assert "bandwidth" in str(err.value)
        assert not isinstance(err.value, ZeroDivisionError)

    def test_zero_cluster_bandwidth_names_the_quantity(self):
        # ClusterSpec itself refuses zero bandwidth, so exercise the
        # pricing guard with a duck-typed stand-in.
        class BrokenCluster:
            gpus_per_node = 8

            def checkpoint_bandwidth_per_node(self):
                return 0.0

        with pytest.raises(ValueError) as err:
            checkpoint_write_seconds(LLAMA3_8B, BrokenCluster(), 32)
        assert "checkpoint bandwidth" in str(err.value)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            shard_transfer_seconds(-1.0, 4, 1e9)
        with pytest.raises(ValueError):
            shard_transfer_seconds(1e9, 0, 1e9)


class TestPolicies:
    def test_no_checkpoint_never_checkpoints(self):
        assert NoCheckpoint().interval_steps(1.0, 10.0, 3600.0) is None

    def test_fixed_interval_is_mtbf_blind(self):
        p = FixedInterval(every_steps=7)
        assert p.interval_steps(1.0, 10.0, 60.0) == 7
        assert p.interval_steps(9.0, 0.1, 1e9) == 7
        with pytest.raises(ValueError):
            FixedInterval(every_steps=0)

    def test_young_daly_matches_the_formula(self):
        step, c, mtbf = 0.9, 3.5, 150.0
        expected = max(1, round(math.sqrt(2 * c * mtbf) / step))
        assert YoungDaly().interval_steps(step, c, mtbf) == expected

    def test_young_daly_floors_at_one_step(self):
        assert YoungDaly().interval_steps(100.0, 0.001, 1.0) == 1

    def test_young_daly_interval_grows_with_mtbf(self):
        yd = YoungDaly()
        assert yd.interval_steps(1.0, 10.0, 3600.0) \
            > yd.interval_steps(1.0, 10.0, 60.0)

    def test_young_daly_validation(self):
        with pytest.raises(ValueError):
            YoungDaly().interval_steps(0.0, 10.0, 60.0)
        with pytest.raises(ValueError):
            YoungDaly().interval_steps(1.0, 10.0, 0.0)

    def test_parse_policy_all_forms(self):
        assert parse_policy("none") == NoCheckpoint()
        assert parse_policy("young-daly") == YoungDaly()
        assert parse_policy("young_daly") == YoungDaly()
        assert parse_policy("fixed:25") == FixedInterval(every_steps=25)

    @pytest.mark.parametrize("bad", ["", "daily", "fixed:", "fixed:x",
                                     "fixed:0", "fixed:-3"])
    def test_parse_policy_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_policy(bad)


class TestFailureProcess:
    def _draw(self, seed, n=10, **kw):
        proc = FailureProcess(mtbf_seconds=100.0, seed=seed, **kw)
        return [proc.next_failure() for _ in range(n)]

    def test_same_seed_same_sequence(self):
        assert self._draw(7) == self._draw(7)

    def test_different_seed_different_sequence(self):
        assert self._draw(7) != self._draw(8)

    def test_times_strictly_increase_and_kinds_are_known(self):
        events = self._draw(0, n=50)
        times = [e.time_seconds for e in events]
        assert times == sorted(times) and times[0] > 0
        assert {e.kind for e in events} <= set(FAILURE_KINDS)
        assert all(0.0 <= e.where_fraction < 1.0 for e in events)
        assert all(e.failed_attempts >= 1 for e in events)

    def test_kind_fractions_are_respected_at_the_extremes(self):
        only_loss = self._draw(0, node_loss_fraction=1.0, retry_fraction=0.0)
        assert {e.kind for e in only_loss} == {"node_loss"}
        only_retry = self._draw(0, node_loss_fraction=0.0, retry_fraction=1.0)
        assert {e.kind for e in only_retry} == {"collective_retry"}

    def test_mean_gap_tracks_mtbf(self):
        events = [FailureProcess(50.0, seed=3).next_failure()
                  for _ in range(1)]
        proc = FailureProcess(50.0, seed=3)
        events = [proc.next_failure() for _ in range(2000)]
        mean_gap = events[-1].time_seconds / len(events)
        assert mean_gap == pytest.approx(50.0, rel=0.1)

    def test_where_scales_onto_fleet(self):
        proc = FailureProcess(100.0, seed=0)
        ev = proc.next_failure()
        assert 0 <= ev.node_index(4) < 4
        assert 0 <= ev.rank_index(32) < 32
        with pytest.raises(ValueError):
            ev.node_index(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureProcess(0.0)
        with pytest.raises(ValueError):
            FailureProcess(100.0, node_loss_fraction=1.5)
        with pytest.raises(ValueError):
            # Fractions must fit in the unit interval together.
            FailureProcess(100.0, node_loss_fraction=0.8, retry_fraction=0.5)
        with pytest.raises(ValueError):
            FailureProcess(100.0, retry_success_p=0.0)
