"""Tests for CP head/tail sequence sharding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cp.sharding import (
    chunk_bounds,
    chunks_of_rank,
    naive_contiguous_workloads,
    rank_row_indices,
    rank_workloads,
    workload_imbalance,
)
from repro.data.documents import DocumentBatch, make_batch


class TestChunking:
    def test_bounds_partition_sequence(self):
        bounds = chunk_bounds(100, 4)
        assert len(bounds) == 8
        assert bounds[0][0] == 0 and bounds[-1][1] == 100
        for (s1, e1), (s2, e2) in zip(bounds, bounds[1:]):
            assert e1 == s2

    def test_head_tail_pairing(self):
        # Rank i gets chunks i and 2*cp - i - 1 (Section 4).
        assert chunks_of_rank(4, 0) == (0, 7)
        assert chunks_of_rank(4, 3) == (3, 4)

    def test_rows_cover_sequence(self):
        seq, cp = 64, 4
        all_rows = np.concatenate([
            rank_row_indices(seq, cp, r) for r in range(cp)
        ])
        assert sorted(all_rows.tolist()) == list(range(seq))

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_bounds(4, 4)  # seq < 2*cp
        with pytest.raises(ValueError):
            chunks_of_rank(4, 4)

    @given(
        seq=st.integers(min_value=16, max_value=512),
        cp=st.integers(min_value=1, max_value=8),
    )
    def test_rows_partition_property(self, seq, cp):
        if seq < 2 * cp:
            return
        all_rows = np.concatenate([
            rank_row_indices(seq, cp, r) for r in range(cp)
        ])
        assert len(all_rows) == seq
        assert len(set(all_rows.tolist())) == seq


class TestWorkloads:
    def test_causal_perfectly_balanced(self):
        """The head/tail pairing balances the causal mask exactly when
        2*cp divides seq (Figure 7a)."""
        w = rank_workloads(64, 4)
        assert len(set(w)) == 1

    def test_causal_beats_naive_contiguous(self):
        balanced = workload_imbalance(rank_workloads(128, 4))
        naive = workload_imbalance(naive_contiguous_workloads(128, 4))
        assert balanced < naive
        assert naive > 1.5  # last contiguous slice is far heavier

    def test_total_area_preserved(self):
        seq = 96
        assert sum(rank_workloads(seq, 4)) == seq * (seq + 1) // 2

    def test_document_mask_breaks_balance(self):
        batch = make_batch(256, mean_doc_len=40.0,
                           rng=np.random.default_rng(3))
        w = rank_workloads(256, 4, batch)
        assert workload_imbalance(w) > 1.01

    def test_single_doc_matches_causal(self):
        batch = DocumentBatch(seq=64, doc_lens=(64,))
        assert rank_workloads(64, 4, batch) == rank_workloads(64, 4)

    def test_imbalance_validation(self):
        with pytest.raises(ValueError):
            workload_imbalance([])
        assert workload_imbalance([0, 0]) == 1.0

    @settings(max_examples=30, deadline=None)
    @given(
        cp=st.integers(min_value=1, max_value=8),
        mean=st.floats(min_value=20.0, max_value=100.0),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_workloads_sum_to_mask_area(self, cp, mean, seed):
        seq = 256
        batch = make_batch(seq, mean_doc_len=mean,
                           rng=np.random.default_rng(seed))
        w = rank_workloads(seq, cp, batch)
        assert sum(w) == int(batch.attended_per_row().sum())
