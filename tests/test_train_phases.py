"""Tests for the multi-phase pre-training planner."""

import pytest

from repro.hardware.cluster import GRAND_TETON_16K
from repro.model.config import LLAMA3_405B
from repro.parallel.config import JobConfig
from repro.train.phases import (
    LLAMA3_405B_PHASES,
    TrainingPhase,
    describe_pretraining,
    plan_pretraining,
)


@pytest.fixture(scope="module")
def reports():
    return plan_pretraining(LLAMA3_405B, GRAND_TETON_16K)


class TestProductionPhases:
    def test_three_phases_in_order(self, reports):
        assert [r.phase.name for r in reports] == [
            "short-context ramp-up", "short-context main", "long-context",
        ]

    def test_cp_appears_only_in_long_context(self, reports):
        assert reports[0].plan.parallel.cp == 1
        assert reports[1].plan.parallel.cp == 1
        assert reports[2].plan.parallel.cp == 16

    def test_token_budget_constant_in_main_phases(self):
        main, long_ctx = LLAMA3_405B_PHASES[1], LLAMA3_405B_PHASES[2]
        assert main.job.tokens_per_step == long_ctx.job.tokens_per_step

    def test_model_parallel_sizes_stable_across_phases(self, reports):
        """The flexibility claim: phases change dp/cp, never tp/pp — the
        model sharding survives every hyperparameter change."""
        tps = {r.plan.parallel.tp for r in reports}
        pps = {r.plan.parallel.pp for r in reports}
        assert tps == {8} and pps == {16}

    def test_all_phases_fit_memory_and_train_fast(self, reports):
        for r in reports:
            assert r.max_memory_gb < 80
            assert r.tflops_per_gpu > 350

    def test_describe_contains_each_phase(self, reports):
        text = describe_pretraining(reports)
        for r in reports:
            assert r.phase.name in text


class TestCustomPhases:
    def test_custom_progression(self):
        phases = (
            TrainingPhase("tiny", JobConfig(seq=8192, gbs=256, ngpu=2048)),
        )
        reports = plan_pretraining(LLAMA3_405B, GRAND_TETON_16K, phases)
        assert len(reports) == 1
        assert reports[0].plan.parallel.world_size == 2048
