"""Schema-stability tests for the machine-readable run reports."""

import json

import numpy as np
import pytest

from repro.cp.imbalance import simulate_fleet_imbalance
from repro.debug.trace_analysis import identify_slow_rank
from repro.debug.workload import run_synthetic_workload
from repro.hardware.cluster import grand_teton
from repro.model.config import LLAMA3_8B
from repro.obs.report import (
    SCHEMA_VERSION,
    imbalance_report,
    phases_report,
    plan_report,
    render_json,
    slow_rank_report,
    step_group_metrics,
    step_report,
)
from repro.parallel.config import JobConfig, ParallelConfig, ZeroStage
from repro.parallel.mesh import DeviceMesh
from repro.parallel.planner import plan_parallelism
from repro.train.phases import LLAMA3_405B_PHASES, plan_pretraining
from repro.train.step import simulate_step

PAR = ParallelConfig(tp=2, cp=1, pp=4, dp=2, zero=ZeroStage.ZERO_2)
JOB = JobConfig(seq=8192, gbs=8, ngpu=16)


@pytest.fixture(scope="module")
def step():
    return simulate_step(LLAMA3_8B, PAR, JOB, grand_teton(16))


def _round_trips(report):
    assert json.loads(render_json(report)) == report


class TestPlanReport:
    def test_schema_and_fields(self):
        plan = plan_parallelism(LLAMA3_8B, JOB, grand_teton(16))
        rep = plan_report(plan)
        assert rep["schema"] == f"repro.plan/v{SCHEMA_VERSION}"
        assert rep["parallel"]["world_size"] == 16
        assert rep["job"]["gbs"] == 8
        assert isinstance(rep["rationale"], list) and rep["rationale"]
        _round_trips(rep)


class TestStepReport:
    def test_schema_and_headline_numbers(self, step):
        rep = step_report(step, PAR, JOB)
        assert rep["schema"] == f"repro.step/v{SCHEMA_VERSION}"
        assert rep["step_seconds"] == pytest.approx(step.step_seconds)
        assert rep["tflops_per_gpu"] == pytest.approx(step.tflops_per_gpu)
        assert len(rep["per_rank_busy_seconds"]) == PAR.pp
        assert len(rep["bubble_ratios"]) == PAR.pp
        assert rep["max_peak_memory_gb"] == pytest.approx(
            max(rep["per_rank_peak_memory_gb"]))
        _round_trips(rep)

    def test_groups_cover_all_dims(self, step):
        groups = step_group_metrics(step, PAR)
        assert set(groups) == {"busy_seconds", "idle_seconds",
                               "exposed_comm_seconds", "bubble_ratio"}
        for table in groups.values():
            assert set(table) == {"tp", "cp", "ep", "pp", "dp"}
        # The pp axis resolves per-stage; other axes collapse to index 0.
        assert set(groups["busy_seconds"]["pp"]) == {str(i)
                                                     for i in range(PAR.pp)}
        assert set(groups["busy_seconds"]["tp"]) == {"0"}

    def test_group_totals_match_run(self, step):
        groups = step_group_metrics(step, PAR)
        total_busy = sum(groups["busy_seconds"]["dp"].values())
        assert total_busy == pytest.approx(sum(step.run.per_rank_busy))


class TestPhasesReport:
    def test_schema_and_per_phase_rows(self):
        from repro.model.config import LLAMA3_405B

        reports = plan_pretraining(
            LLAMA3_405B, grand_teton(16384), LLAMA3_405B_PHASES[:2])
        rep = phases_report(reports)
        assert rep["schema"] == f"repro.phases/v{SCHEMA_VERSION}"
        assert [p["name"] for p in rep["phases"]] == \
            [r.phase.name for r in reports]
        for row in rep["phases"]:
            assert row["tflops_per_gpu"] > 0
            assert row["parallel"]["world_size"] == row["job"]["ngpu"]
        _round_trips(rep)


class TestImbalanceReport:
    def test_schema_and_summaries(self):
        fleet = simulate_fleet_imbalance(
            grand_teton(256), seq=131072, cp=16, n_dp_groups=8, steps=2,
            mean_doc_len=32768.0, rng=np.random.default_rng(0))
        rep = imbalance_report(fleet)
        assert rep["schema"] == f"repro.imbalance/v{SCHEMA_VERSION}"
        assert rep["n_gpus"] == fleet.compute_seconds.size
        for key in ("attention_seconds", "compute_seconds",
                    "exposed_cp_seconds", "wait_seconds"):
            summary = rep[key]
            assert summary["min"] <= summary["mean"] <= summary["max"]
        _round_trips(rep)


class TestSlowRankReport:
    def test_decisions_are_structured_events(self):
        mesh = DeviceMesh(ParallelConfig(tp=4, cp=2))
        sim = run_synthetic_workload(mesh, slowdown={6: 0.5})
        rep = slow_rank_report(identify_slow_rank(sim, mesh))
        assert rep["schema"] == f"repro.slow_rank/v{SCHEMA_VERSION}"
        assert rep["slow_rank"] == 6
        assert rep["decisions"]
        for d in rep["decisions"]:
            assert d["event"] == "slow_rank.decision"
            assert d["candidates_after"] <= d["candidates_before"]
        _round_trips(rep)


class TestRenderJson:
    def test_sorted_and_stable(self):
        out = render_json({"b": 1, "a": [1, 2]})
        assert out.index('"a"') < out.index('"b"')
        assert json.loads(out) == {"b": 1, "a": [1, 2]}

    def test_numpy_scalars_rejected_early(self):
        # Reports must contain plain Python numbers, not numpy scalars —
        # render_json is the guard that catches a regression.
        with pytest.raises(TypeError):
            render_json({"x": np.int64(1)})
