"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator, TraceEvent


class TestRun:
    def test_sequential_on_one_stream(self):
        sim = Simulator()
        a = sim.run(0, "compute", 1.0, "a")
        b = sim.run(0, "compute", 2.0, "b")
        assert (a.start, a.end) == (0.0, 1.0)
        assert (b.start, b.end) == (1.0, 3.0)

    def test_streams_overlap(self):
        sim = Simulator()
        sim.run(0, "compute", 5.0, "big")
        c = sim.run(0, "p2p", 1.0, "send")
        assert c.start == 0.0  # different stream, runs concurrently

    def test_after_dependency(self):
        sim = Simulator()
        a = sim.run(0, "compute", 1.0, "a")
        b = sim.run(1, "compute", 1.0, "b", after=[a])
        assert b.start == 1.0

    def test_not_before(self):
        sim = Simulator()
        e = sim.run(0, "compute", 1.0, "x", not_before=4.0)
        assert e.start == 4.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Simulator().run(0, "compute", -1.0, "bad")


class TestCollective:
    def test_starts_at_slowest_participant(self):
        sim = Simulator()
        sim.run(0, "compute", 1.0, "w0")
        sim.run(1, "compute", 3.0, "w1")
        events = sim.run_collective([0, 1], "compute", 0.5, "ag")
        # Rank 0 joins at 1.0 but waits; both end at 3.5.
        assert events[0].start == 1.0
        assert events[1].start == 3.0
        assert events[0].end == events[1].end == 3.5

    def test_straggler_has_shortest_span(self):
        """The Section 6.1 signature: the slow rank's collective trace
        span is the shortest in the group."""
        sim = Simulator()
        sim.run(0, "compute", 1.0, "w0")
        sim.run(1, "compute", 5.0, "w1-slow")
        events = sim.run_collective([0, 1], "compute", 0.2, "ag")
        assert events[1].duration < events[0].duration

    def test_skew_injection(self):
        sim = Simulator()
        events = sim.run_collective([0, 1], "compute", 1.0, "ag",
                                    skew={1: 2.0})
        assert events[1].start == 2.0
        assert events[0].end == 3.0

    def test_duplicate_ranks_rejected(self):
        with pytest.raises(ValueError):
            Simulator().run_collective([0, 0], "compute", 1.0, "bad")

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            Simulator().run_collective([], "compute", 1.0, "bad")

    def test_group_recorded_on_events(self):
        sim = Simulator()
        events = sim.run_collective([3, 5], "compute", 1.0, "ag")
        assert events[3].group == (3, 5)


class TestInspection:
    def _three_rank_sim(self):
        sim = Simulator()
        sim.run(0, "compute", 2.0, "a")
        sim.run(1, "compute", 1.0, "b")
        sim.run(0, "compute", 1.0, "c", kind="comm")
        return sim

    def test_makespan(self):
        assert self._three_rank_sim().makespan() == 3.0

    def test_makespan_filtered(self):
        assert self._three_rank_sim().makespan(ranks=[1]) == 1.0

    def test_busy_and_idle(self):
        sim = self._three_rank_sim()
        assert sim.busy_time(0) == 3.0
        assert sim.idle_time(1) == 2.0

    def test_events_for_filters(self):
        sim = self._three_rank_sim()
        assert len(sim.events_for(0)) == 2
        assert len(sim.events_for(0, kind="comm")) == 1

    def test_overlaps(self):
        a = TraceEvent("a", "compute", 0, "s", 0.0, 2.0)
        b = TraceEvent("b", "compute", 1, "s", 1.0, 3.0)
        c = TraceEvent("c", "compute", 2, "s", 2.0, 3.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_trace_export_format(self):
        from repro.obs.trace import trace_event_dicts

        rows = trace_event_dicts(self._three_rank_sim())
        spans = [r for r in rows if r.get("ph") == "X"]
        assert spans[0]["ts"] == 0.0 and spans[0]["dur"] == 2e6

    def test_advance_blocks_stream(self):
        sim = Simulator()
        sim.advance(0, "compute", 5.0)
        e = sim.run(0, "compute", 1.0, "x")
        assert e.start == 5.0
