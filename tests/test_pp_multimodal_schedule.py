"""Tests for the event-level multimodal pipeline simulation."""

import pytest

from repro.hardware.cluster import grand_teton
from repro.model.config import LLAMA3_MULTIMODAL_672
from repro.pp.multimodal import LayerGrouping, compare_layer_grouping
from repro.pp.multimodal_schedule import (
    compare_groupings_event_level,
    simulate_multimodal_pipeline,
    stage_costs,
)

CLUSTER = grand_teton(64)
MM = LLAMA3_MULTIMODAL_672
PP, NMB = 8, 16


class TestStageCosts:
    def test_wrapped_stages_homogeneous(self):
        fwd, bwd = stage_costs(MM, LayerGrouping.WRAPPED, CLUSTER)
        assert len(set(fwd)) == 1 and len(set(bwd)) == 1
        assert len(fwd) == MM.n_cross_layers

    def test_separate_stages_alternate(self):
        fwd, bwd = stage_costs(MM, LayerGrouping.SEPARATE, CLUSTER)
        assert len(fwd) == 2 * MM.n_cross_layers
        # Stages are imbalanced: a block of n frozen self layers vs one
        # cross layer; per layer, cross is the heavier (image tokens).
        assert fwd[0] != fwd[1]
        assert fwd[1] > fwd[0] / MM.self_per_cross

    def test_frozen_self_backward_cheap(self):
        """Frozen self layers skip weight grads: bwd < 2x fwd; trained
        cross layers pay the full 2x (Section 3.2.2)."""
        fwd, bwd = stage_costs(MM, LayerGrouping.SEPARATE, CLUSTER)
        self_fwd, cross_fwd = fwd[0], fwd[1]
        self_bwd, cross_bwd = bwd[0], bwd[1]
        assert self_bwd < 1.7 * self_fwd
        assert cross_bwd == pytest.approx(2.0 * cross_fwd)

    def test_total_work_equal_across_groupings(self):
        w_fwd, w_bwd = stage_costs(MM, LayerGrouping.WRAPPED, CLUSTER)
        s_fwd, s_bwd = stage_costs(MM, LayerGrouping.SEPARATE, CLUSTER)
        assert sum(w_fwd) == pytest.approx(sum(s_fwd))
        assert sum(w_bwd) == pytest.approx(sum(s_bwd))


class TestEventLevelComparison:
    def test_wrapped_wins_event_level(self):
        """The paper's grouping choice, confirmed by event simulation:
        balance beats the larger ideal bubble."""
        wrapped, separate = compare_groupings_event_level(
            MM, PP, NMB, CLUSTER)
        assert wrapped.makespan < separate.makespan
        assert wrapped.relative_throughput > separate.relative_throughput

    def test_agrees_with_closed_form_model(self):
        """Event-level and analytical models pick the same winner."""
        analytical = compare_layer_grouping(MM, pp=PP, nmb=NMB)
        event = compare_groupings_event_level(MM, PP, NMB, CLUSTER)
        analytical_winner = min(analytical,
                                key=lambda g: g.effective_step_cost)
        event_winner = min(event, key=lambda r: r.makespan)
        assert analytical_winner.grouping is event_winner.grouping

    def test_stage_count_divisibility_enforced(self):
        with pytest.raises(ValueError):
            simulate_multimodal_pipeline(MM, LayerGrouping.WRAPPED,
                                         pp=5, nmb=NMB, cluster=CLUSTER)

    def test_separate_bubble_worse_despite_more_stages(self):
        wrapped, separate = compare_groupings_event_level(
            MM, PP, NMB, CLUSTER)
        # SEPARATE has twice the virtual stages (smaller ideal bubble)
        # yet measures a *larger* effective bubble: imbalance dominates.
        assert separate.num_stages == 2 * wrapped.num_stages
        assert separate.bubble_ratio > wrapped.bubble_ratio
