"""Tests for streaming trace ingestion and the constant-memory
aggregator."""

import io
import json

import pytest

from repro.analysis.streaming import (
    LightEvent,
    StreamingTraceAggregator,
    iter_trace_events,
)
from repro.obs.trace import export_chrome_trace
from repro.sim.engine import Simulator


def _sim():
    sim = Simulator()
    sim.run(0, "compute", 2.0, "fwd")
    sim.run(0, "tp", 0.5, "tp:ag:x", kind="comm")
    sim.run(1, "compute", 1.0, "bwd")
    return sim


class TestIterSources:
    def setup_method(self):
        self.sim = _sim()

    def _check(self, events):
        events = list(events)
        assert len(events) == 3
        assert {e.name for e in events} == {"fwd", "tp:ag:x", "bwd"}
        by_name = {e.name: e for e in events}
        assert by_name["fwd"].duration == pytest.approx(2.0)
        assert by_name["tp:ag:x"].kind == "comm"
        assert by_name["tp:ag:x"].stream == "tp"
        assert by_name["bwd"].rank == 1

    def test_live_simulator_events(self):
        self._check(iter_trace_events(self.sim.events))

    def test_trace_dict(self):
        obj = export_chrome_trace(self.sim, io.StringIO())
        self._check(iter_trace_events(obj))

    def test_bare_row_list(self):
        obj = export_chrome_trace(self.sim, io.StringIO())
        self._check(iter_trace_events(obj["traceEvents"]))

    def test_file_path(self, tmp_path):
        path = tmp_path / "trace.json"
        export_chrome_trace(self.sim, str(path))
        self._check(iter_trace_events(str(path)))

    def test_file_object_streamed(self, tmp_path):
        path = tmp_path / "trace.json"
        export_chrome_trace(self.sim, str(path))
        with open(path, encoding="utf-8") as fh:
            self._check(iter_trace_events(fh))

    def test_round_trip_preserves_times(self, tmp_path):
        path = tmp_path / "trace.json"
        export_chrome_trace(self.sim, str(path))
        by_name = {e.name: e for e in iter_trace_events(str(path))}
        for e in self.sim.events:
            assert by_name[e.name].start == pytest.approx(e.start)
            assert by_name[e.name].end == pytest.approx(e.end)

    def test_marker_rows_become_zero_duration(self):
        rows = [{"name": "fail", "cat": "marker", "ph": "i", "s": "t",
                 "pid": 3, "tid": 0, "ts": 2_000_000.0,
                 "args": {"stream": "ctrl"}}]
        (event,) = iter_trace_events(rows)
        assert event.duration == 0.0
        assert event.start == pytest.approx(2.0)
        assert event.rank == 3

    def test_metadata_and_flow_rows_skipped(self):
        rows = [
            {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
             "args": {"name": "rank 0"}},
            {"name": "x", "ph": "s", "pid": 0, "tid": 0, "ts": 0.0,
             "id": 1, "cat": "collective"},
        ]
        assert list(iter_trace_events(rows)) == []

    def test_tags_preserved(self):
        rows = [{"name": "x", "cat": "compute", "ph": "X", "pid": 0,
                 "tid": 0, "ts": 0.0, "dur": 1.0,
                 "args": {"stream": "compute", "tags": ["faulted"]}}]
        (event,) = iter_trace_events(rows)
        assert event.tags == ("faulted",)


class TestMalformedInput:
    def test_no_trace_events_array(self):
        with pytest.raises(ValueError, match="traceEvents"):
            list(iter_trace_events(io.StringIO('{"otherData": {}}')))

    def test_unterminated_array(self):
        stream = io.StringIO('{"traceEvents": [{"ph": "X", "name": "x", '
                             '"pid": 0, "tid": 0, "ts": 0, "dur": 1}')
        with pytest.raises(ValueError, match="unterminated"):
            list(iter_trace_events(stream))

    def test_non_object_row(self):
        with pytest.raises(ValueError, match="expected object"):
            list(iter_trace_events(io.StringIO('{"traceEvents": [42]}')))

    def test_trace_events_not_a_list(self):
        with pytest.raises(ValueError, match="not a list"):
            list(iter_trace_events({"traceEvents": 42}))

    def test_garbage_header_bounded(self):
        # A large non-JSON head must fail, not buffer forever.
        stream = io.StringIO("x" * (2 << 20))
        with pytest.raises(ValueError, match="traceEvents"):
            list(iter_trace_events(stream))


class TestAggregator:
    def test_counts_and_makespan(self):
        agg = StreamingTraceAggregator(top_k=2).consume(_sim().events)
        assert agg.n_events == 3
        assert agg.n_ranks == 2
        assert agg.makespan == pytest.approx(2.0)

    def test_per_stream_kind_stats(self):
        agg = StreamingTraceAggregator().consume(_sim().events)
        d = agg.to_dict()
        compute = d["streams"]["compute/compute"]
        assert compute["count"] == 2
        assert compute["total_seconds"] == pytest.approx(3.0)
        assert compute["min_seconds"] == pytest.approx(1.0)
        assert compute["max_seconds"] == pytest.approx(2.0)
        assert compute["mean_seconds"] == pytest.approx(1.5)
        assert d["streams"]["tp/comm"]["count"] == 1

    def test_top_k_slowest(self):
        agg = StreamingTraceAggregator(top_k=2).consume(_sim().events)
        top = agg.top_slowest()
        assert [t["name"] for t in top] == ["fwd", "bwd"]
        assert top[0]["duration_seconds"] == pytest.approx(2.0)

    def test_top_k_memory_bound(self):
        agg = StreamingTraceAggregator(top_k=5)
        for i in range(10_000):
            agg.add(LightEvent(name=f"e{i}", kind="compute", rank=0,
                               stream="compute", start=float(i),
                               end=float(i) + (i % 7) / 10.0))
        assert len(agg._heap) == 5
        assert agg.n_events == 10_000
        assert all(t["duration_seconds"] == pytest.approx(0.6)
                   for t in agg.top_slowest())

    def test_top_k_zero_disables_heap(self):
        agg = StreamingTraceAggregator(top_k=0).consume(_sim().events)
        assert agg.top_slowest() == []

    def test_negative_top_k_rejected(self):
        with pytest.raises(ValueError):
            StreamingTraceAggregator(top_k=-1)

    def test_to_dict_deterministic(self):
        a = StreamingTraceAggregator(top_k=3).consume(_sim().events)
        b = StreamingTraceAggregator(top_k=3).consume(_sim().events)
        assert json.dumps(a.to_dict(), sort_keys=True) == \
            json.dumps(b.to_dict(), sort_keys=True)


class TestEndToEnd:
    def test_aggregate_exported_step_trace(self, tmp_path):
        from repro.hardware.cluster import grand_teton
        from repro.model.config import LLAMA3_8B
        from repro.parallel.config import JobConfig, ParallelConfig
        from repro.train.step import simulate_step

        par = ParallelConfig(tp=2, cp=1, pp=2, dp=2)
        job = JobConfig(seq=8192, gbs=8, ngpu=8)
        rep = simulate_step(LLAMA3_8B, par, job, grand_teton(8))
        path = tmp_path / "step.json"
        export_chrome_trace(rep.run.sim, str(path))
        agg = StreamingTraceAggregator(top_k=5).consume(
            iter_trace_events(str(path)))
        assert agg.n_events == len(rep.run.sim.events)
        assert agg.makespan == pytest.approx(rep.step_seconds)
        # Live-simulator ingestion agrees with file ingestion.
        live = StreamingTraceAggregator(top_k=5).consume(rep.run.sim.events)
        assert live.n_events == agg.n_events
        assert live.to_dict()["streams"].keys() == \
            agg.to_dict()["streams"].keys()
