"""Tests for the real-numerics FSDP (ZeRO-1/2/3) emulator."""

import numpy as np
import pytest

from repro.numerics.fsdp_emul import FsdpEmulator, _shard_bounds
from repro.numerics.precision import ALL_FP32, PRODUCTION
from repro.numerics.transformer import TinyConfig, TinyTransformer
from repro.parallel.config import ZeroStage

CFG = TinyConfig()


def _data(batch=8, seq=16, seed=2):
    rng = np.random.default_rng(seed)
    return (rng.integers(0, CFG.vocab, (batch, seq)),
            rng.integers(0, CFG.vocab, (batch, seq)))


def _trainer(dp, zero, precision=ALL_FP32, seed=1):
    return FsdpEmulator(
        model=TinyTransformer.create(CFG, seed=seed),
        dp=dp, zero=zero, precision=precision,
    )


class TestShardBounds:
    def test_covers_whole_buffer(self):
        bounds = _shard_bounds(10, 3)
        assert bounds[0] == (0, 4)
        assert bounds[-1][1] == 10
        covered = sum(hi - lo for lo, hi in bounds)
        assert covered == 10

    def test_more_shards_than_elements(self):
        bounds = _shard_bounds(2, 4)
        assert bounds[0] == (0, 1) and bounds[1] == (1, 2)
        assert all(lo == hi for lo, hi in bounds[2:])


class TestZeroEquivalence:
    def test_all_zero_stages_bitwise_identical(self):
        """Sharding moves bytes, never changes arithmetic: ZeRO-1/2/3
        produce identical trajectories bit for bit."""
        tokens, targets = _data()
        curves = {}
        for zero in ZeroStage:
            trainer = _trainer(dp=4, zero=zero)
            curves[zero] = trainer.train(tokens, targets, steps=4)
        assert curves[ZeroStage.ZERO_1] == curves[ZeroStage.ZERO_2]
        assert curves[ZeroStage.ZERO_2] == curves[ZeroStage.ZERO_3]

    def test_matches_unsharded_dp_bitwise(self):
        """FSDP with dp ranks equals plain data-parallel training with
        the same ring reduction order — bitwise."""
        from repro.numerics.parallel_emul import dp_sharded_grads

        tokens, targets = _data()
        trainer = _trainer(dp=4, zero=ZeroStage.ZERO_3)
        reference = TinyTransformer.create(CFG, seed=1)

        for _ in range(3):
            grads = dp_sharded_grads(reference, tokens, targets, dp=4,
                                     precision=ALL_FP32)
            mean = {k: v / tokens.shape[0] for k, v in grads.items()}
            reference.apply_sgd(mean, lr=0.1)
            trainer.train_step(tokens, targets, lr=0.1)

        for name in reference.params:
            np.testing.assert_array_equal(
                trainer.model.params[name].astype(np.float32),
                reference.params[name].astype(np.float32),
            )

    def test_dp1_matches_plain_sgd(self):
        tokens, targets = _data(batch=4)
        trainer = _trainer(dp=1, zero=ZeroStage.ZERO_1)
        losses = trainer.train(tokens, targets, steps=5)
        assert losses[-1] < losses[0]


class TestTraining:
    def test_loss_decreases_under_production_precision(self):
        tokens, targets = _data()
        trainer = _trainer(dp=4, zero=ZeroStage.ZERO_2,
                           precision=PRODUCTION)
        losses = trainer.train(tokens, targets, steps=6)
        assert losses[-1] < losses[0] - 0.1

    def test_batch_divisibility_enforced(self):
        tokens, targets = _data(batch=6)
        trainer = _trainer(dp=4, zero=ZeroStage.ZERO_1)
        with pytest.raises(ValueError):
            trainer.train_step(tokens, targets)

    def test_dp_validation(self):
        with pytest.raises(ValueError):
            _trainer(dp=0, zero=ZeroStage.ZERO_1)


class TestMemoryAccounting:
    def test_zero_stage_ordering(self):
        """Resident bytes: ZeRO-1 > ZeRO-2 > ZeRO-3, matching the
        Section 2.1 sharding definitions."""
        sizes = {
            zero: _trainer(dp=8, zero=zero).resident_bytes_per_rank()
            for zero in ZeroStage
        }
        assert sizes[ZeroStage.ZERO_1]["total"] > \
            sizes[ZeroStage.ZERO_2]["total"]
        assert sizes[ZeroStage.ZERO_2]["total"] > \
            sizes[ZeroStage.ZERO_3]["total"]

    def test_grads_are_what_zero2_shards(self):
        z1 = _trainer(dp=8, zero=ZeroStage.ZERO_1).resident_bytes_per_rank()
        z2 = _trainer(dp=8, zero=ZeroStage.ZERO_2).resident_bytes_per_rank()
        assert z1["params"] == z2["params"]
        assert z2["grads"] < z1["grads"]
        assert z1["optimizer"] == z2["optimizer"]
