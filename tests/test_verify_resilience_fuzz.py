"""The resilience fuzz campaign: sampling determinism, invariant
checking over random taxonomies/policies, and shrinking."""

import dataclasses

import numpy as np
import pytest

from repro.verify.resilience_fuzz import (
    POLICY_POOL,
    ResilienceScenario,
    check_resilience_scenario,
    run_resilience_fuzz,
    sample_resilience_scenario,
    shrink_resilience_scenario,
)


class TestSampling:
    def test_same_seed_same_scenarios(self):
        a = [sample_resilience_scenario(np.random.default_rng(5))
             for _ in range(1)]
        b = [sample_resilience_scenario(np.random.default_rng(5))
             for _ in range(1)]
        assert a == b

    def test_samples_are_valid_and_varied(self):
        rng = np.random.default_rng(0)
        scenarios = [sample_resilience_scenario(rng) for _ in range(30)]
        assert all(5 <= s.steps <= 25 for s in scenarios)
        assert all(s.policy_spec in POLICY_POOL for s in scenarios)
        assert len({s.policy_spec for s in scenarios}) > 1
        assert len({s.mitigation for s in scenarios}) == 2
        # run_config() must construct without error for every sample.
        for s in scenarios:
            s.run_config()

    def test_describe_is_a_reproduction_recipe(self):
        s = sample_resilience_scenario(np.random.default_rng(1))
        text = s.describe()
        for key in ("steps=", "seed=", "policy=", "tax=("):
            assert key in text


class TestCampaign:
    def test_small_campaign_is_clean(self):
        result = run_resilience_fuzz(8, seed=0)
        assert result.ok
        assert result.cases == 8
        assert result.failed_cases == 0
        assert result.failures == ()

    def test_campaign_is_deterministic(self):
        a = run_resilience_fuzz(4, seed=3)
        b = run_resilience_fuzz(4, seed=3)
        assert a.to_dict() == b.to_dict()

    def test_to_dict_shape(self):
        d = run_resilience_fuzz(2, seed=1).to_dict()
        assert set(d) == {"seed", "cases", "failed_cases", "ok",
                          "failures"}

    def test_cases_must_be_positive(self):
        with pytest.raises(ValueError):
            run_resilience_fuzz(0)


class TestChecker:
    def test_crash_is_reported_not_raised(self):
        scenario = sample_resilience_scenario(np.random.default_rng(2))
        broken = dataclasses.replace(scenario, steps=-1)
        ok, violations = check_resilience_scenario(broken)
        assert not ok
        assert violations[0]["check"] == "crash"
        assert "message" in violations[0]


class TestShrinking:
    def test_shrinks_to_the_minimal_failing_knob(self):
        scenario = ResilienceScenario(
            steps=24, mtbf_seconds=100.0, seed=9,
            taxonomy=dataclasses.replace(
                sample_resilience_scenario(
                    np.random.default_rng(0)).taxonomy),
            policy_spec="tiered:auto", mitigation="detect",
            elastic=True)

        def fails_iff_gray(s):
            return s.taxonomy.gray_fraction > 0

        assert fails_iff_gray(scenario)
        shrunk = shrink_resilience_scenario(scenario, fails_iff_gray)
        # Everything irrelevant got simplified away...
        assert shrunk.steps == 5
        assert shrunk.policy_spec == "young-daly"
        assert shrunk.mitigation == "tolerate"
        assert shrunk.taxonomy.rack_loss_fraction == 0.0
        assert shrunk.taxonomy.corruption_fraction == 0.0
        # ...but the failing ingredient survived.
        assert shrunk.taxonomy.gray_fraction > 0
