"""Tests for the Section 5.2 dimension-ordering analysis."""

import pytest

from repro.hardware.cluster import GRAND_TETON_16K
from repro.model.config import LLAMA3_405B
from repro.parallel.config import JobConfig, ParallelConfig, ZeroStage
from repro.parallel.ordering import (
    PAPER_ORDER,
    dimension_traffic,
    links_for_order,
    rank_orderings,
    score_ordering,
)

PAR = ParallelConfig(tp=8, cp=16, pp=16, dp=8, zero=ZeroStage.ZERO_2)
JOB = JobConfig(seq=131072, gbs=128, ngpu=16384)


class TestTraffic:
    def test_tp_most_frequent(self):
        """TP communicates four times per layer — the most frequent
        dimension by far (Section 5.2)."""
        t = dimension_traffic(LLAMA3_405B, PAR, JOB)
        assert t["tp"].events_per_step > t["cp"].events_per_step
        assert t["cp"].events_per_step > t["dp"].events_per_step

    def test_only_dp_hideable(self):
        t = dimension_traffic(LLAMA3_405B, PAR, JOB)
        assert t["dp"].hideable
        assert not t["tp"].hideable
        assert not t["cp"].hideable
        assert not t["pp"].hideable

    def test_pp_is_p2p_not_collective(self):
        t = dimension_traffic(LLAMA3_405B, PAR, JOB)
        assert not t["pp"].collective
        assert t["tp"].collective and t["cp"].collective


class TestLinkAssignment:
    def test_paper_order_puts_tp_on_nvlink(self):
        links = links_for_order(PAPER_ORDER, PAR, GRAND_TETON_16K)
        assert links["tp"] is GRAND_TETON_16K.intra_node_link
        assert links["cp"] is GRAND_TETON_16K.inter_node_link

    def test_tp_outermost_forces_roce(self):
        links = links_for_order(("dp", "pp", "cp", "tp"), PAR,
                                GRAND_TETON_16K)
        assert links["tp"] is GRAND_TETON_16K.inter_node_link

    def test_size1_dims_trivially_intra_node(self):
        par = ParallelConfig(tp=8, cp=1, pp=16, dp=128)
        links = links_for_order(("cp", "tp", "pp", "dp"), par,
                                GRAND_TETON_16K)
        assert links["cp"] is GRAND_TETON_16K.intra_node_link

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            links_for_order(("tp", "tp", "pp", "dp"), PAR, GRAND_TETON_16K)


class TestScoring:
    def test_paper_order_is_optimal(self):
        scores = rank_orderings(LLAMA3_405B, PAR, JOB, GRAND_TETON_16K)
        best = scores[0].exposed_seconds
        paper = next(s for s in scores if s.order == PAPER_ORDER)
        assert paper.exposed_seconds == pytest.approx(best)

    def test_tp_outer_much_worse(self):
        inner = score_ordering(PAPER_ORDER, LLAMA3_405B, PAR, JOB,
                               GRAND_TETON_16K)
        outer = score_ordering(("dp", "pp", "cp", "tp"), LLAMA3_405B, PAR,
                               JOB, GRAND_TETON_16K)
        assert outer.exposed_seconds > 2 * inner.exposed_seconds

    def test_all_24_permutations_scored(self):
        scores = rank_orderings(LLAMA3_405B, PAR, JOB, GRAND_TETON_16K)
        assert len(scores) == 24
        assert len({s.order for s in scores}) == 24

    def test_dp_contribution_small(self):
        """DP's overlap makes its exposed share tiny despite the largest
        payload — why it sits outermost."""
        s = score_ordering(PAPER_ORDER, LLAMA3_405B, PAR, JOB,
                           GRAND_TETON_16K)
        assert s.per_dim_seconds["dp"] < 0.05 * s.exposed_seconds
