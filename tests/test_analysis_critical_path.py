"""Tests for critical-path extraction: the exact makespan invariant,
slack semantics, and the invariant-suite integration."""

import pytest

from repro.analysis.critical_path import SLACK_EPS, extract_critical_path
from repro.hardware.cluster import grand_teton
from repro.model.config import LLAMA3_8B
from repro.obs.metrics import record_critical_path_metrics
from repro.parallel.config import JobConfig, ParallelConfig, ZeroStage
from repro.train.step import simulate_step
from repro.verify.invariants import run_step_invariants


def _step(nc=None, pp=2, dp=2, gbs=8, zero=2, fault_plan=None):
    par = ParallelConfig(tp=2, cp=1, pp=pp, dp=dp, zero=ZeroStage(zero))
    job = JobConfig(seq=8192, gbs=gbs, ngpu=par.world_size)
    return simulate_step(LLAMA3_8B, par, job, grand_teton(job.ngpu),
                         nc=nc, fault_plan=fault_plan)


def _extract(rep):
    return extract_critical_path(rep.execution.graph, rep.execution.events,
                                 makespan=rep.step_seconds)


class TestExactness:
    """The chain tiles [0, makespan] with bitwise-contiguous links."""

    def setup_method(self):
        self.rep = _step()
        self.cp = _extract(self.rep)

    def test_exact_flag(self):
        assert self.cp.exact

    def test_starts_at_origin(self):
        assert self.cp.entries[0].start == 0.0
        assert self.cp.entries[0].via == "origin"

    def test_links_bitwise_contiguous(self):
        for prev, cur in zip(self.cp.entries, self.cp.entries[1:]):
            assert cur.start == prev.end  # exact float equality
            assert cur.via in ("dep", "stream")

    def test_ends_at_step_makespan(self):
        assert self.cp.entries[-1].end == self.rep.step_seconds

    def test_path_seconds_equals_makespan(self):
        assert self.cp.path_seconds == self.rep.step_seconds

    def test_stream_decomposition_sums_to_path(self):
        total = sum(self.cp.seconds_by_stream.values())
        assert total == pytest.approx(self.cp.path_seconds)

    def test_path_ops_have_negligible_slack(self):
        for e in self.cp.entries:
            assert 0.0 <= e.slack <= SLACK_EPS

    def test_slack_covers_every_executed_op(self):
        assert set(self.cp.slack_by_uid) == set(self.rep.execution.events)
        assert all(s >= 0.0 for s in self.cp.slack_by_uid.values())

    def test_near_critical_excludes_path_ops(self):
        on_path = {e.uid for e in self.cp.entries}
        assert all(e.uid not in on_path for e in self.cp.near_critical)
        slacks = [e.slack for e in self.cp.near_critical]
        assert slacks == sorted(slacks)


class TestNcPinMatrix:
    """Critical-path-vs-makespan agreement across nc in {1, pp-1, pp,
    nmb} — mirroring the warm-up pins (pp=4, nmb=12)."""

    @pytest.mark.parametrize("nc", [1, 3, 4, 12])
    def test_exact_across_round_sizes(self, nc):
        rep = _step(nc=nc, pp=4, dp=1, gbs=12)
        cp = _extract(rep)
        assert cp.exact
        assert cp.entries[0].start == 0.0
        for prev, cur in zip(cp.entries, cp.entries[1:]):
            assert cur.start == prev.end
        assert cp.entries[-1].end == rep.step_seconds


class TestFaultedGraph:
    def test_exact_under_fault_plan(self):
        from repro.faults import FaultPlan, parse_fault_spec

        plan = FaultPlan((parse_fault_spec("straggler:rank=2,extra=0.25"),))
        rep = _step(fault_plan=plan)
        cp = _extract(rep)
        assert cp.exact
        assert cp.entries[-1].end == rep.step_seconds
        # The straggler dominates: the path runs through compute.
        assert cp.share_by_stream["compute"] > 0.9


class TestInvariantSuite:
    def test_run_step_invariants_includes_check(self):
        rep = _step()
        report = run_step_invariants(rep.execution.graph,
                                     rep.execution.events)
        assert "critical-path-makespan" in report.checks_run
        assert not [v for v in report.violations
                    if v.check == "critical-path-makespan"]

    def test_check_flags_tampered_timeline(self):
        from repro.verify.invariants import check_critical_path_makespan

        rep = _step()
        events = dict(rep.execution.events)
        # Shift the terminal event later: the chain can no longer reach it
        # through contiguous links.
        uid = max(events, key=lambda u: events[u].end)
        events[uid] = events[uid].replace(start=events[uid].start + 0.5,
                                          end=events[uid].end + 0.5)
        violations = check_critical_path_makespan(rep.execution.graph, events)
        assert violations
        assert all(v.check == "critical-path-makespan" for v in violations)


class TestEmptyAndDegenerate:
    def test_empty_events(self):
        rep = _step()
        cp = extract_critical_path(rep.execution.graph, {})
        assert cp.entries == ()
        assert cp.n_ops == 0
        assert cp.path_seconds == 0.0

    def test_to_dict_bounds_lists(self):
        cp = _extract(_step())
        d = cp.to_dict(top=3)
        assert len(d["top_entries"]) == 3
        assert len(d["near_critical"]) <= 3
        assert d["exact"] is True
        assert d["n_ops"] == cp.n_ops

    def test_remap_ranks(self):
        cp = _extract(_step())
        remapped = cp.remap_ranks({0: 10, 1: 21})
        assert {e.rank for e in remapped.entries} <= {10, 21}
        assert remapped.makespan_seconds == cp.makespan_seconds


class TestMetricsHook:
    def test_record_critical_path_metrics(self):
        cp = _extract(_step())
        registry = record_critical_path_metrics(cp)
        assert registry.gauge("critical_path.makespan_seconds").value() == \
            cp.makespan_seconds
        by_stream = cp.seconds_by_stream
        for stream, seconds in by_stream.items():
            assert registry.gauge("critical_path.seconds").value(
                stream=stream) == pytest.approx(seconds)
            assert registry.gauge("critical_path.share").value(
                stream=stream) == pytest.approx(
                    seconds / cp.makespan_seconds)
        ops = registry.counter("critical_path.ops")
        total = sum(row["value"] for row in ops.sample_rows())
        assert total == cp.n_ops

    def test_rank_map_applied(self):
        cp = _extract(_step())
        registry = record_critical_path_metrics(cp, rank_map={0: 4, 1: 6})
        gauge = registry.gauge("critical_path.rank_seconds")
        labeled = {dict(k).get("rank") for k in gauge.values}
        assert labeled <= {"4", "6"}
