"""Tests for the real-numerics pipeline emulator: staged execution with
actual activation hand-offs must match monolithic execution bitwise."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.numerics.compare import bitwise_equal
from repro.numerics.parallel_emul import grads_in_order
from repro.numerics.pipeline_emul import make_pipeline
from repro.numerics.precision import ALL_BF16, ALL_FP32, PRODUCTION
from repro.numerics.transformer import TinyConfig, TinyTransformer
from repro.pp.analysis import ScheduleShape
from repro.pp.schedule import build_afab_schedule, build_flexible_schedule

CFG = TinyConfig(n_layers=4)


def _data(nmb, seq=12, seed=2):
    rng = np.random.default_rng(seed)
    return (rng.integers(0, CFG.vocab, (nmb, seq)),
            rng.integers(0, CFG.vocab, (nmb, seq)))


def _monolithic_grads(model, tokens, targets, precision, order):
    """Whole-model gradients accumulated in the given micro-batch order."""
    return grads_in_order(model, tokens, targets, order, precision)


class TestBitwiseEquivalence:
    """The Section 6.2 contract applied to a real pipelined execution."""

    @pytest.mark.parametrize("precision", [ALL_FP32, ALL_BF16, PRODUCTION],
                             ids=["fp32", "bf16", "production"])
    def test_pipeline_matches_monolithic(self, precision):
        shape = ScheduleShape(pp=2, v=2, nc=2, nmb=4)
        sched = build_flexible_schedule(shape)
        model = TinyTransformer.create(CFG, seed=1)
        tokens, targets = _data(4)
        pipe = make_pipeline(model, sched, precision)
        loss, grads = pipe.run_step(tokens, targets)

        # The pipeline accumulates each stage's gradients in that stage's
        # backward order; for this schedule every stage sees ascending
        # micro-batch order, so the monolithic baseline uses 0..nmb-1.
        mono = _monolithic_grads(model, tokens, targets, precision,
                                 range(4))
        assert bitwise_equal(grads, mono)
        assert np.isfinite(loss)

    def test_afab_matches_too(self):
        shape = ScheduleShape(pp=2, v=2, nc=4, nmb=4)
        sched = build_afab_schedule(shape)
        model = TinyTransformer.create(CFG, seed=3)
        tokens, targets = _data(4, seed=5)
        pipe = make_pipeline(model, sched, ALL_BF16)
        _, grads = pipe.run_step(tokens, targets)
        mono = _monolithic_grads(model, tokens, targets, ALL_BF16,
                                 range(4))
        assert bitwise_equal(grads, mono)

    def test_loss_matches_monolithic_mean(self):
        shape = ScheduleShape(pp=2, v=1, nc=2, nmb=4)
        sched = build_flexible_schedule(shape)
        model = TinyTransformer.create(CFG, seed=7)
        tokens, targets = _data(4, seed=9)
        pipe = make_pipeline(model, sched, ALL_FP32)
        loss, _ = pipe.run_step(tokens, targets)
        ref = np.mean([
            model.loss_and_grads(tokens[i], targets[i], ALL_FP32)[0]
            for i in range(4)
        ])
        assert loss == pytest.approx(float(ref), abs=1e-12)

    @settings(max_examples=12, deadline=None)
    @given(
        pp=st.integers(min_value=1, max_value=4),
        v=st.sampled_from([1, 2, 4]),
        rounds=st.integers(min_value=1, max_value=2),
        seed=st.integers(min_value=0, max_value=20),
    )
    def test_any_schedule_matches_property(self, pp, v, rounds, seed):
        if CFG.n_layers % (pp * v) != 0:
            return
        nc = 2
        shape = ScheduleShape(pp=pp, v=v, nc=nc, nmb=nc * rounds)
        sched = build_flexible_schedule(shape)
        model = TinyTransformer.create(CFG, seed=seed)
        tokens, targets = _data(shape.nmb, seed=seed)
        pipe = make_pipeline(model, sched, ALL_BF16)
        _, grads = pipe.run_step(tokens, targets)
        mono = _monolithic_grads(model, tokens, targets, ALL_BF16,
                                 range(shape.nmb))
        assert bitwise_equal(grads, mono)


class TestValidation:
    def test_wrong_microbatch_count(self):
        shape = ScheduleShape(pp=2, v=2, nc=2, nmb=4)
        pipe = make_pipeline(TinyTransformer.create(CFG, seed=1),
                             build_flexible_schedule(shape), ALL_FP32)
        tokens, targets = _data(3)
        with pytest.raises(ValueError):
            pipe.run_step(tokens, targets)

    def test_layout_layer_count_checked(self):
        from repro.pp.layout import build_layout

        shape = ScheduleShape(pp=2, v=2, nc=2, nmb=4)
        with pytest.raises(ValueError):
            make_pipeline(
                TinyTransformer.create(CFG, seed=1),
                build_flexible_schedule(shape), ALL_FP32,
                layout=build_layout(8, 2, 2),
            )

    def test_peak_live_activations(self):
        shape = ScheduleShape(pp=2, v=2, nc=2, nmb=4)
        pipe = make_pipeline(TinyTransformer.create(CFG, seed=1),
                             build_flexible_schedule(shape), ALL_FP32)
        assert pipe.peak_live_activations() >= 1


class TestTraining:
    def test_pipelined_training_converges(self):
        shape = ScheduleShape(pp=2, v=2, nc=2, nmb=4)
        sched = build_flexible_schedule(shape)
        model = TinyTransformer.create(CFG, seed=11)
        tokens, targets = _data(4, seed=13)
        pipe = make_pipeline(model, sched, PRODUCTION)
        losses = []
        for _ in range(6):
            loss, grads = pipe.run_step(tokens, targets)
            losses.append(loss)
            mean = {k: v / shape.nmb for k, v in grads.items()}
            model.apply_sgd(mean, lr=0.5)
        assert losses[-1] < losses[0] - 0.2
