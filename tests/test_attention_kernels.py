"""Tests for the exact numpy attention kernels: reference, flash, masks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.attention.flash import flash_attention
from repro.attention.masks import (
    allowed_ranges,
    causal_mask,
    document_mask,
    mask_area,
    rows_mask,
)
from repro.attention.reference import attention_reference, expand_kv
from repro.data.documents import doc_ids_from_lengths


def _qkv(seq, heads, kv_heads, hd, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal((seq, heads, hd)),
        rng.standard_normal((seq, kv_heads, hd)),
        rng.standard_normal((seq, kv_heads, hd)),
    )


class TestMasks:
    def test_causal_shape_and_area(self):
        m = causal_mask(8)
        assert m.shape == (8, 8)
        assert mask_area(m) == 36

    def test_document_mask_blocks(self):
        ids = doc_ids_from_lengths([2, 3])
        m = document_mask(ids)
        assert not m[2, 1]    # second doc cannot see first
        assert m[3, 2]        # within second doc, causal
        assert not m[2, 3]    # still causal within doc

    def test_allowed_ranges_contiguous(self):
        ids = doc_ids_from_lengths([3, 2])
        r = allowed_ranges(ids)
        assert r[0].tolist() == [0, 1]
        assert r[2].tolist() == [0, 3]
        assert r[3].tolist() == [3, 4]
        assert r[4].tolist() == [3, 5]

    def test_rows_mask(self):
        m = causal_mask(6)
        sub = rows_mask(m, [1, 4])
        assert sub.shape == (2, 6)
        assert sub[0].sum() == 2 and sub[1].sum() == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            causal_mask(0)
        with pytest.raises(ValueError):
            document_mask(np.array([]))


class TestReference:
    def test_rows_are_convex_combinations(self):
        q, k, v = _qkv(16, 4, 2, 8)
        res = attention_reference(q, k, v, causal_mask(16))
        vmax = expand_kv(v, 4).max()
        vmin = expand_kv(v, 4).min()
        assert res.out.max() <= vmax + 1e-9
        assert res.out.min() >= vmin - 1e-9

    def test_first_token_attends_only_itself(self):
        q, k, v = _qkv(8, 2, 2, 4)
        res = attention_reference(q, k, v, causal_mask(8))
        np.testing.assert_allclose(res.out[0], v[0], atol=1e-12)

    def test_fully_masked_row_zero_output(self):
        q, k, v = _qkv(4, 2, 2, 4)
        mask = causal_mask(4)
        mask[2, :] = False
        res = attention_reference(q, k, v, mask)
        assert np.all(res.out[2] == 0)
        assert np.all(np.isneginf(res.lse[2]))

    def test_gqa_equals_repeated_kv(self):
        q, k, v = _qkv(12, 4, 2, 8)
        gqa = attention_reference(q, k, v, causal_mask(12))
        mha = attention_reference(q, expand_kv(k, 4), expand_kv(v, 4),
                                  causal_mask(12))
        np.testing.assert_allclose(gqa.out, mha.out, atol=1e-12)

    def test_lse_is_logsumexp_of_scores(self):
        q, k, v = _qkv(6, 1, 1, 4)
        mask = causal_mask(6)
        res = attention_reference(q, k, v, mask)
        scale = 1 / np.sqrt(4)
        scores = (q[:, 0, :] @ k[:, 0, :].T) * scale
        scores[~mask] = -np.inf
        expected = np.log(np.sum(np.exp(scores), axis=1))
        np.testing.assert_allclose(res.lse[:, 0], expected, atol=1e-10)

    def test_shape_validation(self):
        q, k, v = _qkv(8, 2, 2, 4)
        with pytest.raises(ValueError):
            attention_reference(q, k, v, causal_mask(7))
        with pytest.raises(ValueError):
            attention_reference(q[:, 0, :], k, v, causal_mask(8))


class TestFlash:
    def test_matches_reference_causal(self):
        q, k, v = _qkv(33, 4, 2, 8)
        ref = attention_reference(q, k, v, causal_mask(33))
        fl, stats = flash_attention(q, k, v, causal_mask(33), block_k=8)
        np.testing.assert_allclose(fl.out, ref.out, atol=1e-12)
        np.testing.assert_allclose(fl.lse, ref.lse, atol=1e-12)
        assert stats.num_tiles == 5

    def test_skips_fully_masked_tiles(self):
        ids = doc_ids_from_lengths([8, 8])
        q, k, v = _qkv(16, 2, 1, 4)
        _, stats = flash_attention(q, k, v, document_mask(ids), block_k=8)
        # Tile (doc0 rows x doc1 keys) is skipped; the upper-left and
        # lower-right tiles both run.
        assert stats.num_tiles == 2

    @settings(max_examples=25, deadline=None)
    @given(
        seq=st.integers(min_value=2, max_value=48),
        block=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_matches_reference_property(self, seq, block, seed):
        q, k, v = _qkv(seq, 2, 1, 4, seed=seed)
        mask = causal_mask(seq)
        ref = attention_reference(q, k, v, mask)
        fl, _ = flash_attention(q, k, v, mask, block_k=block)
        np.testing.assert_allclose(fl.out, ref.out, atol=1e-10)

    def test_validation(self):
        q, k, v = _qkv(8, 2, 2, 4)
        with pytest.raises(ValueError):
            flash_attention(q, k, v, causal_mask(8), block_k=0)
