"""Tests for model configurations."""

import pytest

from repro.model.config import (
    LLAMA3_405B,
    LLAMA3_405B_SCALED_26L,
    LLAMA3_405B_UNBALANCED,
    LLAMA3_70B,
    LLAMA3_8B,
    MultimodalConfig,
    TextModelConfig,
    VIT_448,
    VIT_672,
)
from repro.model.flops import model_params


class TestTextConfigs:
    def test_405b_has_126_layers_after_balancing(self):
        # Section 3.1.2: 126 layers instead of 128.
        assert LLAMA3_405B.n_layers == 126
        assert LLAMA3_405B_UNBALANCED.n_layers == 128

    def test_parameter_counts_match_names(self):
        assert model_params(LLAMA3_8B) == pytest.approx(8e9, rel=0.05)
        assert model_params(LLAMA3_70B) == pytest.approx(70e9, rel=0.05)
        assert model_params(LLAMA3_405B) == pytest.approx(405e9, rel=0.05)

    def test_gqa_ratio(self):
        assert LLAMA3_405B.gqa_ratio == 16
        assert LLAMA3_8B.gqa_ratio == 4

    def test_vocab_is_128k(self):
        # Section 7.1.2: the 128K vocabulary drives PP imbalance.
        assert LLAMA3_405B.vocab_size == 128256

    def test_with_layers(self):
        assert LLAMA3_405B_SCALED_26L.n_layers == 26
        assert LLAMA3_405B_SCALED_26L.dim == LLAMA3_405B.dim

    def test_validation(self):
        with pytest.raises(ValueError):
            TextModelConfig(name="bad", dim=100, n_layers=2, n_heads=3,
                            n_kv_heads=1, ffn_hidden=10)
        with pytest.raises(ValueError):
            TextModelConfig(name="bad", dim=128, n_layers=2, n_heads=8,
                            n_kv_heads=3, ffn_hidden=10)
        with pytest.raises(ValueError):
            TextModelConfig(name="bad", dim=128, n_layers=0, n_heads=8,
                            n_kv_heads=8, ffn_hidden=10)


class TestVisionConfigs:
    def test_image_token_counts_match_paper(self):
        # Section 3.2.2: ~1.2K tokens at 448px, ~3K at 672px.
        assert VIT_448.num_image_tokens == 1024
        assert VIT_672.num_image_tokens == 2304

    def test_patch_divisibility_enforced(self):
        with pytest.raises(ValueError):
            VIT_448.__class__(
                name="bad", dim=64, n_layers=2, n_heads=4, ffn_hidden=128,
                image_size=450, patch_size=14,
            )


class TestMultimodalConfig:
    def test_cross_layer_count(self):
        mm = MultimodalConfig(text=LLAMA3_8B, vision=VIT_448,
                              self_per_cross=4)
        assert mm.n_cross_layers == 8
        assert mm.image_seq == 1024

    def test_text_seq_much_shorter_than_image_seq(self):
        mm = MultimodalConfig(text=LLAMA3_8B, vision=VIT_672)
        assert mm.text_seq < 200 < mm.image_seq

    def test_ratio_must_divide_layers(self):
        with pytest.raises(ValueError):
            MultimodalConfig(text=LLAMA3_8B, vision=VIT_448,
                             self_per_cross=5)
