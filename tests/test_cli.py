"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestPlan:
    def test_table2_short_context(self, capsys):
        assert main(["plan", "--model", "405b", "--seq", "8192",
                     "--gbs", "2048", "--ngpu", "16384"]) == 0
        out = capsys.readouterr().out
        assert "tp=8 cp=1 pp=16 dp=128" in out

    def test_table2_long_context(self, capsys):
        assert main(["plan", "--model", "405b", "--seq", "131072",
                     "--gbs", "128", "--ngpu", "16384"]) == 0
        out = capsys.readouterr().out
        assert "tp=8 cp=16 pp=16 dp=8" in out

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["plan", "--model", "bogus"])


class TestStep:
    def test_default_405b_step(self, capsys):
        assert main(["step"]) == 0
        out = capsys.readouterr().out
        assert "TFLOPs/GPU" in out
        assert "peak memory" in out

    def test_world_size_mismatch_rejected(self):
        with pytest.raises(SystemExit):
            main(["step", "--ngpu", "64", "--tp", "8", "--pp", "2",
                  "--dp", "2"])


class TestPhases:
    def test_lists_all_phases(self, capsys):
        assert main(["phases"]) == 0
        out = capsys.readouterr().out
        assert "short-context ramp-up" in out
        assert "long-context" in out
        assert "cp16" in out


class TestOrdering:
    def test_paper_order_marked(self, capsys):
        assert main(["ordering"]) == 0
        out = capsys.readouterr().out
        first_line = out.splitlines()[0]
        assert "TP-CP-PP-DP" in first_line
        assert "<- paper" in first_line


class TestImbalance:
    def test_reports_statistics(self, capsys):
        assert main(["imbalance", "--dp", "4", "--steps", "1"]) == 0
        out = capsys.readouterr().out
        assert "slowest/fastest" in out
        assert "overlap-CP headroom" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestRun:
    def test_failure_free_run_reports_goodput(self, capsys):
        # An astronomically large MTBF: no failures land in 20 steps.
        assert main(["run", "--steps", "20", "--mtbf", "1e9"]) == 0
        out = capsys.readouterr().out
        assert "steps committed: 20/20 (completed)" in out
        assert "goodput:" in out
        assert "failures:        0" in out

    def test_policy_none_never_checkpoints(self, capsys):
        assert main(["run", "--steps", "5", "--mtbf", "1e9",
                     "--policy", "none"]) == 0
        out = capsys.readouterr().out
        assert "no checkpoints" in out
        assert "never (0 written" in out


class TestRunValidation:
    """Degenerate `repro run` inputs exit 2 with a clear message, never
    a traceback or a hang."""

    @pytest.mark.parametrize("argv, fragment", [
        (["run", "--steps", "0"], "steps"),
        (["run", "--steps", "-3"], "steps"),
        (["run", "--steps", "5", "--mtbf", "0"], "mtbf"),
        (["run", "--steps", "5", "--mtbf", "-10"], "mtbf"),
        (["run", "--steps", "5", "--policy", "bogus"], "policy"),
        (["run", "--steps", "5", "--policy", "fixed:0"], "fixed"),
        (["run", "--steps", "5", "--policy", "tiered:"], "tiered"),
        (["run", "--steps", "5", "--policy", "tiered:tape=3"], "tier"),
        (["run", "--steps", "5", "--taxonomy", "nope"], "taxonomy"),
        (["run", "--steps", "5", "--taxonomy", "node=2.0"], "node"),
        (["run", "--steps", "5", "--topology", "whatever"], "topology"),
        (["run", "--steps", "5", "--detector", "fn=1.5"],
         "false_negative_rate"),
    ])
    def test_bad_inputs_exit_2(self, argv, fragment, capsys):
        with pytest.raises(SystemExit) as err:
            main(argv)
        assert err.value.code == 2
        assert fragment in capsys.readouterr().err

    def test_good_run_still_exits_0(self, capsys):
        assert main(["run", "--steps", "3", "--mtbf", "1e9"]) == 0


class TestRunResilienceFlags:
    """The PR-10 flags: --taxonomy/--topology/--mitigation/--detector
    and tiered --policy, wired through to the v2 JSON report."""

    def test_tiered_run_reports_tiers(self, capsys):
        assert main(["run", "--steps", "6", "--mtbf", "1e9",
                     "--policy", "tiered:peer=2,remote=3"]) == 0
        out = capsys.readouterr().out
        assert "tiers:" in out
        assert "peer" in out and "remote" in out

    def test_json_schema_is_v2_with_taxonomy(self, capsys):
        assert main(["run", "--steps", "4", "--mtbf", "1e9",
                     "--taxonomy", "rack-correlated", "--json"]) == 0
        rep = json.loads(capsys.readouterr().out)
        assert rep["schema"] == "repro.resilience/v2"
        assert rep["config"]["taxonomy"]["rack_loss_fraction"] > 0
        assert rep["config"]["mitigation"] == "tolerate"
        assert "tier_intervals" in rep
        assert "restores" in rep and "mitigations" in rep

    def test_topology_reshapes_the_cluster(self, capsys):
        assert main(["run", "--steps", "3", "--mtbf", "1e9",
                     "--topology", "2x4", "--json"]) == 0
        rep = json.loads(capsys.readouterr().out)
        assert rep["schema"] == "repro.resilience/v2"

    def test_mitigation_detect_with_detector_spec(self, capsys):
        assert main(["run", "--steps", "4", "--mtbf", "1e9",
                     "--taxonomy", "gray-heavy", "--mitigation", "detect",
                     "--detector", "latency=1,fn=0.0", "--json"]) == 0
        rep = json.loads(capsys.readouterr().out)
        assert rep["config"]["mitigation"] == "detect"
        assert rep["config"]["detector"]["latency_steps"] == 1


class TestTraceDestinations:
    """`repro trace` destination handling (PR 6): --out, --stdout, and
    the exit-2 usage errors when neither or both are given."""

    def test_no_destination_exits_2(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["trace", "--cmd", "step", "--model", "8b", "--ngpu", "8",
                  "--gbs", "8", "--tp", "2", "--pp", "2", "--dp", "2"])
        assert err.value.code == 2
        assert "destination" in capsys.readouterr().err

    def test_both_destinations_exit_2(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["trace", "--cmd", "step", "--model", "8b", "--ngpu", "8",
                  "--gbs", "8", "--tp", "2", "--pp", "2", "--dp", "2",
                  "--out", "x.json", "--stdout"])
        assert err.value.code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_stdout_emits_json_trace(self, capsys):
        assert main(["trace", "--cmd", "step", "--model", "8b",
                     "--ngpu", "8", "--gbs", "8", "--tp", "2", "--pp", "2",
                     "--dp", "2", "--stdout"]) == 0
        captured = capsys.readouterr()
        obj = json.loads(captured.out)
        assert obj["traceEvents"]
        # Human-readable step output is diverted to stderr, keeping
        # stdout a clean JSON document for piping into `analyze`.
        assert "step time" in captured.err


class TestSchedules:
    def test_listing_names_every_registered_kind(self, capsys):
        from repro.pp.registry import schedule_kinds

        assert main(["schedules"]) == 0
        out = capsys.readouterr().out
        for kind in schedule_kinds():
            assert kind in out
        assert "split-backward" in out

    def test_names_mode_is_one_kind_per_line(self, capsys):
        from repro.pp.registry import schedule_kinds

        assert main(["schedules", "--names"]) == 0
        out = capsys.readouterr().out
        assert tuple(out.split()) == schedule_kinds()

    def test_json_listing(self, capsys):
        assert main(["schedules", "--json"]) == 0
        rep = json.loads(capsys.readouterr().out)
        assert rep["schema"] == "repro.schedules/v1"
        kinds = {s["kind"]: s for s in rep["schedules"]}
        assert kinds["zero-bubble"]["split_backward"] is True
        assert kinds["gpipe"]["family"] == "afab"


class TestScheduleFlag:
    def test_step_accepts_zoo_kinds(self, capsys):
        assert main(["step", "--model", "8b", "--ngpu", "8", "--gbs", "8",
                     "--tp", "2", "--cp", "1", "--pp", "2", "--dp", "2",
                     "--schedule", "zero-bubble"]) == 0
        assert "bubble ratio" in capsys.readouterr().out

    def test_step_stage_preset(self, capsys):
        assert main(["step", "--model", "8b", "--ngpu", "8", "--gbs", "8",
                     "--tp", "2", "--cp", "1", "--pp", "2", "--dp", "2",
                     "--stage-preset", "vit-encoder"]) == 0
        assert "step time" in capsys.readouterr().out

    def test_step_json_reports_built_schedule(self, capsys):
        assert main(["step", "--model", "8b", "--ngpu", "8", "--gbs", "8",
                     "--tp", "2", "--cp", "1", "--pp", "2", "--dp", "2",
                     "--schedule", "gpipe", "--json"]) == 0
        rep = json.loads(capsys.readouterr().out)
        assert rep["schedule"] == "gpipe"

    def test_plan_schedule_all_sweeps_cost_aware(self, capsys):
        assert main(["plan", "--model", "8b", "--ngpu", "64", "--gbs", "64",
                     "--seq", "8192", "--cost-aware",
                     "--schedule", "all"]) == 0
        out = capsys.readouterr().out
        assert "schedule=" in out
        assert "[gpipe]" in out  # every kind shows up in the candidates

    def test_verify_schedule_restricts_the_fuzz(self, capsys):
        assert main(["verify", "--fuzz", "5", "--schedule", "gpipe",
                     "--no-oracles", "--no-step-invariants"]) == 0
        assert "0 failed" in capsys.readouterr().out

    def test_run_schedule_pin(self, capsys):
        assert main(["run", "--steps", "5", "--mtbf", "5000", "--seed", "0",
                     "--schedule", "1f1b-noninterleaved"]) == 0
        assert "goodput" in capsys.readouterr().out
