"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestPlan:
    def test_table2_short_context(self, capsys):
        assert main(["plan", "--model", "405b", "--seq", "8192",
                     "--gbs", "2048", "--ngpu", "16384"]) == 0
        out = capsys.readouterr().out
        assert "tp=8 cp=1 pp=16 dp=128" in out

    def test_table2_long_context(self, capsys):
        assert main(["plan", "--model", "405b", "--seq", "131072",
                     "--gbs", "128", "--ngpu", "16384"]) == 0
        out = capsys.readouterr().out
        assert "tp=8 cp=16 pp=16 dp=8" in out

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["plan", "--model", "bogus"])


class TestStep:
    def test_default_405b_step(self, capsys):
        assert main(["step"]) == 0
        out = capsys.readouterr().out
        assert "TFLOPs/GPU" in out
        assert "peak memory" in out

    def test_world_size_mismatch_rejected(self):
        with pytest.raises(SystemExit):
            main(["step", "--ngpu", "64", "--tp", "8", "--pp", "2",
                  "--dp", "2"])


class TestPhases:
    def test_lists_all_phases(self, capsys):
        assert main(["phases"]) == 0
        out = capsys.readouterr().out
        assert "short-context ramp-up" in out
        assert "long-context" in out
        assert "cp16" in out


class TestOrdering:
    def test_paper_order_marked(self, capsys):
        assert main(["ordering"]) == 0
        out = capsys.readouterr().out
        first_line = out.splitlines()[0]
        assert "TP-CP-PP-DP" in first_line
        assert "<- paper" in first_line


class TestImbalance:
    def test_reports_statistics(self, capsys):
        assert main(["imbalance", "--dp", "4", "--steps", "1"]) == 0
        out = capsys.readouterr().out
        assert "slowest/fastest" in out
        assert "overlap-CP headroom" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestRun:
    def test_failure_free_run_reports_goodput(self, capsys):
        # An astronomically large MTBF: no failures land in 20 steps.
        assert main(["run", "--steps", "20", "--mtbf", "1e9"]) == 0
        out = capsys.readouterr().out
        assert "steps committed: 20/20 (completed)" in out
        assert "goodput:" in out
        assert "failures:        0" in out

    def test_policy_none_never_checkpoints(self, capsys):
        assert main(["run", "--steps", "5", "--mtbf", "1e9",
                     "--policy", "none"]) == 0
        out = capsys.readouterr().out
        assert "no checkpoints" in out
        assert "never (0 written" in out


class TestTraceDestinations:
    """`repro trace` destination handling (PR 6): --out, --stdout, and
    the exit-2 usage errors when neither or both are given."""

    def test_no_destination_exits_2(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["trace", "--cmd", "step", "--model", "8b", "--ngpu", "8",
                  "--gbs", "8", "--tp", "2", "--pp", "2", "--dp", "2"])
        assert err.value.code == 2
        assert "destination" in capsys.readouterr().err

    def test_both_destinations_exit_2(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["trace", "--cmd", "step", "--model", "8b", "--ngpu", "8",
                  "--gbs", "8", "--tp", "2", "--pp", "2", "--dp", "2",
                  "--out", "x.json", "--stdout"])
        assert err.value.code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_stdout_emits_json_trace(self, capsys):
        assert main(["trace", "--cmd", "step", "--model", "8b",
                     "--ngpu", "8", "--gbs", "8", "--tp", "2", "--pp", "2",
                     "--dp", "2", "--stdout"]) == 0
        captured = capsys.readouterr()
        obj = json.loads(captured.out)
        assert obj["traceEvents"]
        # Human-readable step output is diverted to stderr, keeping
        # stdout a clean JSON document for piping into `analyze`.
        assert "step time" in captured.err


class TestSchedules:
    def test_listing_names_every_registered_kind(self, capsys):
        from repro.pp.registry import schedule_kinds

        assert main(["schedules"]) == 0
        out = capsys.readouterr().out
        for kind in schedule_kinds():
            assert kind in out
        assert "split-backward" in out

    def test_names_mode_is_one_kind_per_line(self, capsys):
        from repro.pp.registry import schedule_kinds

        assert main(["schedules", "--names"]) == 0
        out = capsys.readouterr().out
        assert tuple(out.split()) == schedule_kinds()

    def test_json_listing(self, capsys):
        assert main(["schedules", "--json"]) == 0
        rep = json.loads(capsys.readouterr().out)
        assert rep["schema"] == "repro.schedules/v1"
        kinds = {s["kind"]: s for s in rep["schedules"]}
        assert kinds["zero-bubble"]["split_backward"] is True
        assert kinds["gpipe"]["family"] == "afab"


class TestScheduleFlag:
    def test_step_accepts_zoo_kinds(self, capsys):
        assert main(["step", "--model", "8b", "--ngpu", "8", "--gbs", "8",
                     "--tp", "2", "--cp", "1", "--pp", "2", "--dp", "2",
                     "--schedule", "zero-bubble"]) == 0
        assert "bubble ratio" in capsys.readouterr().out

    def test_step_stage_preset(self, capsys):
        assert main(["step", "--model", "8b", "--ngpu", "8", "--gbs", "8",
                     "--tp", "2", "--cp", "1", "--pp", "2", "--dp", "2",
                     "--stage-preset", "vit-encoder"]) == 0
        assert "step time" in capsys.readouterr().out

    def test_step_json_reports_built_schedule(self, capsys):
        assert main(["step", "--model", "8b", "--ngpu", "8", "--gbs", "8",
                     "--tp", "2", "--cp", "1", "--pp", "2", "--dp", "2",
                     "--schedule", "gpipe", "--json"]) == 0
        rep = json.loads(capsys.readouterr().out)
        assert rep["schedule"] == "gpipe"

    def test_plan_schedule_all_sweeps_cost_aware(self, capsys):
        assert main(["plan", "--model", "8b", "--ngpu", "64", "--gbs", "64",
                     "--seq", "8192", "--cost-aware",
                     "--schedule", "all"]) == 0
        out = capsys.readouterr().out
        assert "schedule=" in out
        assert "[gpipe]" in out  # every kind shows up in the candidates

    def test_verify_schedule_restricts_the_fuzz(self, capsys):
        assert main(["verify", "--fuzz", "5", "--schedule", "gpipe",
                     "--no-oracles", "--no-step-invariants"]) == 0
        assert "0 failed" in capsys.readouterr().out

    def test_run_schedule_pin(self, capsys):
        assert main(["run", "--steps", "5", "--mtbf", "5000", "--seed", "0",
                     "--schedule", "1f1b-noninterleaved"]) == 0
        assert "goodput" in capsys.readouterr().out
