"""Tests for run-vs-run trace diffing and regression blame.

The headline validation: inject a known ``repro.faults`` plan, diff the
faulted step against its healthy baseline, and require the top blame
bucket to name the faulted op kind/stream — on all three standard
meshes.
"""

import pytest

from repro.analysis import LightEvent, diff_traces
from repro.faults import FaultPlan, parse_fault_spec
from repro.hardware.cluster import grand_teton
from repro.model.config import LLAMA3_8B
from repro.parallel.config import JobConfig, ParallelConfig
from repro.train.step import simulate_step

#: The three standard 8-GPU meshes (the paper's running-example scale).
MESHES = [
    dict(tp=2, cp=1, pp=2, dp=2),
    dict(tp=2, cp=2, pp=2, dp=1),
    dict(tp=1, cp=1, pp=4, dp=2),
]


def _steps(mesh, spec):
    par = ParallelConfig(**mesh)
    job = JobConfig(seq=8192, gbs=8, ngpu=par.world_size)
    cluster = grand_teton(job.ngpu)
    healthy = simulate_step(LLAMA3_8B, par, job, cluster)
    plan = FaultPlan((parse_fault_spec(spec),))
    faulted = simulate_step(LLAMA3_8B, par, job, cluster, fault_plan=plan)
    return healthy, faulted


def _diff(mesh, spec):
    healthy, faulted = _steps(mesh, spec)
    return diff_traces(healthy.run.sim.events, faulted.run.sim.events)


class TestBlameCorrectness:
    @pytest.mark.parametrize("mesh", MESHES, ids=lambda m: str(m))
    def test_straggler_blames_compute(self, mesh):
        diff = _diff(mesh, "straggler:rank=2,extra=0.25")
        blamed = diff.blame(threshold=0.05)
        assert blamed, "a straggler must produce a blamable regression"
        top = blamed[0]
        assert top.kind == "compute"
        assert top.stream == "compute"
        assert top.n_faulted > 0
        assert top.top_ops[0].faulted

    @pytest.mark.parametrize("mesh", MESHES, ids=lambda m: str(m))
    def test_degraded_dp_link_blames_fsdp_stream(self, mesh):
        diff = _diff(mesh, "link:dim=dp,group=0,scale=4.0")
        top = diff.blame(threshold=0.05)[0]
        assert (top.kind, top.stream) == ("comm", "fsdp")
        assert top.n_faulted > 0

    @pytest.mark.parametrize(
        "mesh", [m for m in MESHES if m["tp"] > 1], ids=lambda m: str(m))
    def test_degraded_tp_link_blames_tp_stream(self, mesh):
        diff = _diff(mesh, "link:dim=tp,group=0,scale=4.0")
        top = diff.blame(threshold=0.05)[0]
        assert (top.kind, top.stream) == ("comm", "tp")

    def test_degraded_pp_link_blames_p2p_stream(self):
        diff = _diff(MESHES[2], "link:dim=pp,group=0,scale=4.0")
        top = diff.blame(threshold=0.05)[0]
        assert (top.kind, top.stream) == ("comm", "p2p")


class TestDiffMechanics:
    def setup_method(self):
        self.diff = _diff(MESHES[0], "straggler:rank=2,extra=0.25")

    def test_regression_matches_makespans(self):
        assert self.diff.regression_seconds == pytest.approx(
            self.diff.current_makespan - self.diff.baseline_makespan)
        assert self.diff.regression_seconds > 0

    def test_identical_runs_diff_to_zero(self):
        par = ParallelConfig(**MESHES[0])
        job = JobConfig(seq=8192, gbs=8, ngpu=par.world_size)
        rep = simulate_step(LLAMA3_8B, par, job, grand_teton(job.ngpu))
        diff = diff_traces(rep.run.sim.events, rep.run.sim.events)
        assert diff.regression_seconds == 0.0
        assert all(d.delta_seconds == 0.0 for d in diff.deltas)
        assert diff.blame() == []
        assert diff.unmatched_baseline_ops == 0
        assert diff.unmatched_current_ops == 0

    def test_waits_not_bucketed(self):
        # The straggler inflates downstream waits; they must show up in
        # the diagnostic, not in any blame bucket.
        assert self.diff.exposed_wait_delta_seconds > 0
        assert all(b.kind != "exposed_comm" for b in self.diff.buckets())

    def test_bucket_delta_sums_ops(self):
        for b in self.diff.buckets():
            members = [d for d in self.diff.deltas
                       if (d.kind, d.stream) == (b.kind, b.stream)]
            assert b.n_ops == len(members)
            assert b.delta_seconds == pytest.approx(
                sum(d.delta_seconds for d in members))
            assert sum(v for _, v in b.by_rank) == pytest.approx(
                b.delta_seconds)

    def test_blame_threshold_filters(self):
        loose = self.diff.blame(threshold=0.01)
        tight = self.diff.blame(threshold=0.99)
        assert len(tight) <= len(loose)
        total = sum(b.delta_seconds for b in self.diff.buckets()
                    if b.delta_seconds > 0)
        for b in tight:
            assert b.delta_seconds >= 0.99 * total

    def test_to_dict_shape(self):
        d = self.diff.to_dict(top=5)
        assert d["regression_seconds"] > 0
        assert d["blame"][0]["kind"] == "compute"
        assert d["blame"][0]["share"] > 0.5
        assert len(d["top_regressions"]) == 5
        assert d["top_regressions"][0]["delta_seconds"] >= \
            d["top_regressions"][-1]["delta_seconds"]


class TestAlignment:
    def _ev(self, name, start, end, rank=0, stream="compute",
            kind="compute", tags=()):
        return LightEvent(name=name, kind=kind, rank=rank, stream=stream,
                          start=start, end=end, tags=tuple(tags))

    def test_repeated_names_align_by_occurrence(self):
        base = [self._ev("op", 0.0, 1.0), self._ev("op", 1.0, 2.0)]
        cur = [self._ev("op", 0.0, 1.0), self._ev("op", 1.0, 3.0)]
        diff = diff_traces(base, cur)
        assert len(diff.deltas) == 2
        by_occ = {d.occurrence: d.delta_seconds for d in diff.deltas}
        assert by_occ == {0: 0.0, 1: 1.0}

    def test_unmatched_ops_counted(self):
        base = [self._ev("only-base", 0.0, 1.0)]
        cur = [self._ev("only-cur", 0.0, 2.0),
               self._ev("extra", 2.0, 3.0)]
        diff = diff_traces(base, cur)
        assert diff.deltas == ()
        assert (diff.unmatched_baseline_ops,
                diff.unmatched_baseline_seconds) == (1, 1.0)
        assert (diff.unmatched_current_ops,
                diff.unmatched_current_seconds) == (2, 3.0)

    def test_faulted_tag_read_from_current(self):
        base = [self._ev("op", 0.0, 1.0)]
        cur = [self._ev("op", 0.0, 2.0, tags=("faulted",))]
        diff = diff_traces(base, cur)
        assert diff.deltas[0].faulted

    def test_empty_inputs(self):
        diff = diff_traces([], [])
        assert diff.regression_seconds == 0.0
        assert diff.buckets() == []
        assert diff.blame() == []
