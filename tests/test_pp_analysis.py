"""Tests for the closed-form pipeline-schedule math (Section 3.1.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.pp.analysis import (
    ScheduleShape,
    bubble_ratio,
    default_nc,
    degenerates_to_afab,
    extra_warmup_vs_interleaved,
    peak_in_flight_microbatches,
    validate_schedule_params,
    warmup_microbatches,
)


class TestWarmup:
    def test_paper_formula(self):
        # (v - 1) * nc + 2 * (pp - ppr - 1)
        assert warmup_microbatches(pp=3, ppr=0, v=2, nc=3) == 3 + 4
        assert warmup_microbatches(pp=3, ppr=2, v=2, nc=3) == 3

    def test_earlier_ranks_warm_up_deeper(self):
        w = [warmup_microbatches(8, r, 2, 8) for r in range(8)]
        assert w == sorted(w, reverse=True)

    def test_extra_microbatches_when_nc_exceeds_pp(self):
        base = warmup_microbatches(4, 0, 3, 4)
        extra = warmup_microbatches(4, 0, 3, 6)
        assert extra - base == (6 - 4) * (3 - 1)
        assert extra_warmup_vs_interleaved(4, 3, 6) == 4

    def test_no_extra_when_nc_at_most_pp(self):
        assert extra_warmup_vs_interleaved(4, 3, 4) == 0
        assert extra_warmup_vs_interleaved(4, 3, 2) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            warmup_microbatches(4, 4, 1, 1)
        with pytest.raises(ValueError):
            warmup_microbatches(4, -1, 1, 1)


class TestBubbleRatio:
    def test_formula(self):
        # (pp - 1) / (nmb * v), Section 3.1.1.
        assert bubble_ratio(16, 16, 8) == pytest.approx(15 / 128)

    def test_more_microbatches_smaller_bubble(self):
        assert bubble_ratio(8, 32, 1) < bubble_ratio(8, 8, 1)

    def test_more_virtual_stages_smaller_bubble(self):
        assert bubble_ratio(8, 8, 4) < bubble_ratio(8, 8, 1)

    def test_single_stage_no_bubble(self):
        assert bubble_ratio(1, 4, 1) == 0.0


class TestPeakInFlight:
    def test_afab_holds_everything(self):
        assert peak_in_flight_microbatches(
            4, 0, 2, 4, 8, all_forward_all_backward=True
        ) == 16

    def test_1f1b_capped_at_total(self):
        got = peak_in_flight_microbatches(4, 0, 8, 4, 4)
        assert got <= 32

    def test_last_rank_holds_least(self):
        first = peak_in_flight_microbatches(8, 0, 2, 8, 16)
        last = peak_in_flight_microbatches(8, 7, 2, 8, 16)
        assert first > last


class TestScheduleShape:
    def test_derived_quantities(self):
        s = ScheduleShape(pp=4, v=2, nc=4, nmb=8)
        assert s.tmb == 16
        assert s.rounds == 2
        assert s.ideal_bubble_ratio == pytest.approx(3 / 16)

    def test_nc_must_divide_nmb(self):
        with pytest.raises(ValueError):
            ScheduleShape(pp=4, v=2, nc=3, nmb=8)

    def test_nc_bounds(self):
        with pytest.raises(ValueError):
            ScheduleShape(pp=4, v=1, nc=9, nmb=8)
        with pytest.raises(ValueError):
            validate_schedule_params(4, 1, 0, 8)

    @given(
        pp=st.integers(min_value=1, max_value=8),
        v=st.integers(min_value=1, max_value=4),
        nmb=st.integers(min_value=1, max_value=24),
    )
    def test_default_nc_always_valid(self, pp, v, nmb):
        nc = default_nc(pp, nmb)
        validate_schedule_params(pp, v, nc, nmb)
        assert nc <= pp

    def test_degenerates_to_afab(self):
        assert degenerates_to_afab(pp=8, nc=4)
        assert not degenerates_to_afab(pp=8, nc=8)
