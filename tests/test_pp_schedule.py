"""Tests for pipeline-schedule generation, including property-based
certification that flexible schedules execute deadlock-free for arbitrary
(pp, v, nc, nmb) — the paper's Section 3.1.1 flexibility claim."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pp.analysis import ScheduleShape
from repro.pp.grad_memory import peak_in_flight_from_schedule
from repro.pp.layout import build_layout
from repro.pp.schedule import (
    OpKind,
    build_afab_schedule,
    build_flexible_schedule,
    build_interleaved_1f1b,
    build_schedule,
)
from repro.train.cost import StageCost
from repro.train.executor import execute_pipeline


def _execute(schedule, fwd=1.0, bwd=2.0, p2p=0.0):
    shape = schedule.shape
    layout = build_layout(shape.pp * shape.v, shape.pp, shape.v)
    return execute_pipeline(
        schedule, layout,
        lambda s: StageCost(fwd * max(s.n_layers, 0.0), 0.0, 0.0),
        lambda s: StageCost(bwd * max(s.n_layers, 0.0), 0.0, 0.0),
        p2p_seconds=p2p,
    )


class TestFigure2:
    """The paper's worked example: 6 layers, 3 PP ranks, v=2, 6
    micro-batches in 2 rounds of nc=3."""

    SHAPE = ScheduleShape(pp=3, v=2, nc=3, nmb=6)

    def test_layer_interleaving(self):
        sched = build_flexible_schedule(self.SHAPE)
        # Rank 0 hosts global stages 0 and 3 (layers 0 and 3 in Figure 2).
        stages = {op.global_stage(3) for op in sched.program(0)}
        assert stages == {0, 3}

    def test_warmup_counts(self):
        sched = build_flexible_schedule(self.SHAPE)
        # Rank 0: (v-1)*nc + 2*(pp-1) + 1 = 3 + 4 + 1 = 8 warm-up fwds.
        prog = sched.program(0)
        first_bwd = next(i for i, op in enumerate(prog)
                         if op.kind is OpKind.BACKWARD)
        assert first_bwd == 8

    def test_executes_without_deadlock(self):
        run = _execute(build_flexible_schedule(self.SHAPE))
        assert run.makespan > 0


class TestValidation:
    def test_programs_have_all_ops(self):
        sched = build_flexible_schedule(ScheduleShape(pp=4, v=2, nc=4, nmb=8))
        sched.validate()  # does not raise
        for ppr in range(4):
            assert len(sched.program(ppr)) == 2 * 16

    def test_interleaved_requires_multiple_of_pp(self):
        with pytest.raises(ValueError):
            build_interleaved_1f1b(pp=4, v=2, nmb=6)

    def test_interleaved_nmb_below_pp_names_values(self):
        # nmb < pp cannot fill even one warm-up wave; the error must
        # name the offending values, not just restate the rule.
        with pytest.raises(ValueError, match=r"nmb \(2\).*pp \(4\)"):
            build_interleaved_1f1b(pp=4, v=1, nmb=2)

    def test_flexible_accepts_non_multiple(self):
        # The constraint the paper removes (Section 3.1.1).
        sched = build_flexible_schedule(ScheduleShape(pp=4, v=2, nc=3, nmb=6))
        run = _execute(sched)
        assert run.makespan > 0

    def test_build_schedule_dispatch(self):
        shape = ScheduleShape(pp=2, v=1, nc=2, nmb=4)
        assert build_schedule(shape, "afab").name == "afab"
        assert build_schedule(shape, "1f1b").name == "1f1b-interleaved"
        with pytest.raises(ValueError):
            build_schedule(shape, "nope")


class TestMemoryOrdering:
    def test_afab_holds_all_microbatches(self):
        shape = ScheduleShape(pp=4, v=2, nc=4, nmb=8)
        afab = build_afab_schedule(shape)
        assert peak_in_flight_from_schedule(afab, 0) == shape.tmb

    def test_1f1b_holds_fewer_than_afab(self):
        shape = ScheduleShape(pp=4, v=2, nc=4, nmb=16)
        afab = build_afab_schedule(shape)
        f1b = build_flexible_schedule(shape)
        assert peak_in_flight_from_schedule(f1b, 0) < \
            peak_in_flight_from_schedule(afab, 0)

    def test_in_flight_matches_closed_form(self):
        shape = ScheduleShape(pp=4, v=2, nc=4, nmb=16)
        sched = build_flexible_schedule(shape)
        for ppr in range(4):
            assert peak_in_flight_from_schedule(sched, ppr) == \
                shape.peak_in_flight(ppr)

    def test_nc_above_pp_costs_memory(self):
        """Figure 3's trade-off: hiding P2P with extra warm-up
        micro-batches raises peak in-flight count."""
        small = build_flexible_schedule(ScheduleShape(pp=2, v=3, nc=2, nmb=8))
        big = build_flexible_schedule(ScheduleShape(pp=2, v=3, nc=4, nmb=8))
        assert peak_in_flight_from_schedule(big, 0) > \
            peak_in_flight_from_schedule(small, 0)


shapes = st.builds(
    lambda pp, v, rounds, nc: ScheduleShape(pp=pp, v=v, nc=nc,
                                            nmb=nc * rounds),
    pp=st.integers(min_value=1, max_value=6),
    v=st.integers(min_value=1, max_value=4),
    rounds=st.integers(min_value=1, max_value=3),
    nc=st.integers(min_value=1, max_value=8),
)


class TestScheduleProperties:
    @settings(max_examples=60, deadline=None)
    @given(shape=shapes)
    def test_flexible_schedules_valid_and_deadlock_free(self, shape):
        sched = build_flexible_schedule(shape)
        sched.validate()
        run = _execute(sched, p2p=0.1)
        # All work executed exactly once.
        total_compute = sum(run.per_rank_busy)
        expected = shape.pp * shape.tmb * (1.0 + 2.0)
        assert total_compute == pytest.approx(expected)

    @settings(max_examples=40, deadline=None)
    @given(shape=shapes)
    def test_afab_schedules_valid_and_deadlock_free(self, shape):
        sched = build_afab_schedule(shape)
        sched.validate()
        _execute(sched, p2p=0.05)

    @settings(max_examples=40, deadline=None)
    @given(shape=shapes)
    def test_in_flight_never_exceeds_closed_form(self, shape):
        sched = build_flexible_schedule(shape)
        for ppr in range(shape.pp):
            assert peak_in_flight_from_schedule(sched, ppr) <= \
                shape.peak_in_flight(ppr)

    @settings(max_examples=30, deadline=None)
    @given(shape=shapes)
    def test_makespan_at_least_critical_path(self, shape):
        """Makespan can never beat one rank's serial work."""
        run = _execute(build_flexible_schedule(shape))
        assert run.makespan >= shape.tmb * 3.0 - 1e-9
