"""Tiered checkpointing and the detect–mitigate loop: per-tier pricing,
the failure-domain survivability matrix (byte-stable golden), restore
tier selection under correlated failures, and the two pinned headline
comparisons — tiered beats remote-only Young/Daly under rack-correlated
failures, and detect–mitigate beats tolerate-everything under gray
failures — both exact under one seed thanks to the fixed-draw contract.

Regenerate the survivability golden after an intentional change with::

    PYTHONPATH=src python tests/test_resilience_tiered.py --regen
"""

import json
from pathlib import Path

import pytest

from repro.hardware.cluster import grand_teton
from repro.model.config import LLAMA3_8B
from repro.obs.report import render_json, survivability_report
from repro.parallel.config import JobConfig
from repro.resilience import (
    TAXONOMY_PRESETS,
    DetectorModel,
    FailureTaxonomy,
    RunConfig,
    TieredCheckpoint,
    YoungDaly,
    NoCheckpoint,
    FixedInterval,
    cheapest_surviving_tier,
    choose_mitigation,
    parse_detector,
    parse_policy,
    parse_tiered_policy,
    simulate_run,
    survivability_matrix,
    tier_read_seconds,
    tier_survives,
    tier_write_seconds,
)

GOLDEN = Path(__file__).parent / "golden" / "resilience_survivability.json"

MODEL = LLAMA3_8B
JOB = JobConfig(seq=8192, gbs=32, ngpu=32)
CLUSTER = grand_teton(32)


class TestSurvivability:
    def test_matrix_shape_and_remote_always_survives(self):
        matrix = survivability_matrix()
        assert set(matrix) == {"none", "node_loss", "rack_loss",
                               "pod_loss"}
        for domain, by_tier in matrix.items():
            assert set(by_tier) == {"peer", "local", "remote"}
            assert by_tier["remote"] is True

    def test_domain_semantics(self):
        # Peer replicas live on another node in the same rack.
        assert tier_survives("peer", "node_loss")
        assert not tier_survives("peer", "rack_loss")
        assert not tier_survives("peer", "pod_loss")
        # Node-local NVMe shards die with any hardware loss.
        assert not tier_survives("local", "node_loss")
        assert tier_survives("local", "none")
        with pytest.raises(ValueError):
            tier_survives("peer", "gray")
        with pytest.raises(ValueError):
            tier_survives("tape", "node_loss")

    def test_cheapest_surviving_tier(self):
        tiers = ("peer", "local", "remote")
        assert cheapest_surviving_tier(tiers, "none") == "peer"
        assert cheapest_surviving_tier(tiers, "node_loss") == "peer"
        assert cheapest_surviving_tier(tiers, "rack_loss") == "remote"
        assert cheapest_surviving_tier(("remote",), "node_loss") \
            == "remote"
        assert cheapest_surviving_tier(("local",), "node_loss") is None


class TestTierPricing:
    def test_cost_hierarchy_matches_the_storage_hierarchy(self):
        w = {t: tier_write_seconds(t, MODEL, CLUSTER, 32)
             for t in ("peer", "local", "remote")}
        assert w["peer"] < w["local"] < w["remote"]
        for t in ("peer", "local", "remote"):
            assert tier_read_seconds(t, MODEL, CLUSTER, 32) == w[t]

    def test_zero_payload_is_free_on_every_tier(self):
        for t in ("peer", "local", "remote"):
            assert tier_write_seconds(t, MODEL, CLUSTER, 32,
                                      payload_bytes=0.0) == 0.0

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError):
            tier_write_seconds("tape", MODEL, CLUSTER, 32)


class TestTieredPolicy:
    def test_parse_auto(self):
        policy = parse_policy("tiered:auto")
        assert isinstance(policy, TieredCheckpoint)
        assert [t for t, _ in policy.tiers] == ["peer", "local",
                                                "remote"]
        assert all(isinstance(p, YoungDaly) for _, p in policy.tiers)

    def test_parse_explicit_intervals(self):
        policy = parse_tiered_policy("tiered:peer=2,remote=young-daly")
        by_tier = dict(policy.tiers)
        assert isinstance(by_tier["peer"], FixedInterval)
        assert by_tier["peer"].every_steps == 2
        assert isinstance(by_tier["remote"], YoungDaly)
        assert isinstance(policy.policy_for("local"), NoCheckpoint)

    @pytest.mark.parametrize("bad", [
        "tiered:", "tiered:bogus", "tiered:tape=3",
        "tiered:peer=2,peer=3", "tiered:peer=0",
        "tiered:peer=none,remote=none",
    ])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_policy(bad)

    def test_all_none_rejected(self):
        with pytest.raises(ValueError):
            TieredCheckpoint(tiers=(("peer", NoCheckpoint()),))

    def test_tier_intervals_follow_tier_costs(self):
        policy = parse_policy("tiered:auto")
        writes = {t: tier_write_seconds(t, MODEL, CLUSTER, 32)
                  for t in ("peer", "local", "remote")}
        intervals = policy.tier_intervals(1.0, writes, 150.0)
        # Cheaper tiers checkpoint at least as often as pricier ones.
        assert intervals["peer"] <= intervals["local"] \
            <= intervals["remote"]
        assert all(v >= 1 for v in intervals.values())


def _tiered_run(taxonomy, *, policy="tiered:auto", seed=3, steps=120,
                mtbf=60.0, mitigation="tolerate"):
    cfg = RunConfig(steps=steps, mtbf_seconds=mtbf,
                    policy=parse_policy(policy), seed=seed,
                    elastic=False, replacement_seconds=60.0,
                    taxonomy=taxonomy, mitigation=mitigation)
    return simulate_run(MODEL, JOB, CLUSTER, cfg)


class TestTieredRuns:
    def test_node_loss_restores_from_the_peer_tier(self):
        tax = FailureTaxonomy(node_loss_fraction=1.0, retry_fraction=0.0)
        r = _tiered_run(tax, seed=2, mtbf=40.0)
        assert r.counters["node_losses"] >= 1
        assert r.restores, "expected at least one restore"
        node_restores = [x for x in r.restores
                         if x["domain"] == "node_loss"]
        assert node_restores
        # Restores come from the newest surviving record; the local
        # tier never survives a node loss.
        assert all(x["tier"] in ("peer", "remote")
                   for x in node_restores)
        assert any(x["tier"] == "peer" for x in node_restores)

    def test_rack_loss_falls_back_to_remote(self):
        tax = FailureTaxonomy(node_loss_fraction=0.0, retry_fraction=0.0,
                              rack_loss_fraction=1.0)
        r = _tiered_run(tax, seed=2, mtbf=40.0)
        assert r.counters["rack_losses"] >= 1
        rack_restores = [x for x in r.restores
                         if x["domain"] == "rack_loss"]
        assert rack_restores
        assert all(x["tier"] in ("remote", "none")
                   for x in rack_restores)

    def test_tier_writes_are_counted_and_priced(self):
        tax = FailureTaxonomy(node_loss_fraction=0.0, retry_fraction=0.0)
        r = _tiered_run(tax, seed=1, mtbf=150.0, steps=60)
        assert r.tier_writes["peer"] >= r.tier_writes["remote"] >= 1
        assert set(r.tier_intervals) == {"peer", "local", "remote"}
        names = [e.name for e in r.sim.events]
        assert any(n.startswith("checkpoint:peer:") for n in names)
        assert any(n.startswith("checkpoint:remote:") for n in names)


class TestHeadlinePins:
    """The two pinned single-seed comparisons from the issue.  Exact
    comparisons are meaningful because the fixed-draw contract gives
    every arm the same failure sequence."""

    def test_tiered_beats_remote_only_young_daly_under_rack_failures(self):
        kwargs = dict(steps=200, mtbf_seconds=150.0, seed=3,
                      elastic=False, replacement_seconds=60.0,
                      taxonomy=TAXONOMY_PRESETS["rack-correlated"])
        remote_only = simulate_run(
            MODEL, JOB, CLUSTER,
            RunConfig(policy=YoungDaly(), **kwargs))
        tiered = simulate_run(
            MODEL, JOB, CLUSTER,
            RunConfig(policy=parse_policy("tiered:auto"), **kwargs))
        assert remote_only.completed and tiered.completed
        assert remote_only.counters["restarts"] >= 1
        assert tiered.goodput_fraction > remote_only.goodput_fraction
        # Pin both sides so a silent regression in either arm shows up.
        assert tiered.goodput_fraction \
            == pytest.approx(0.24052300127174123, rel=1e-9)
        assert remote_only.goodput_fraction \
            == pytest.approx(0.23252861719207876, rel=1e-9)

    def test_detect_mitigate_beats_tolerate_under_gray_failures(self):
        kwargs = dict(steps=300, mtbf_seconds=150.0, seed=2,
                      elastic=False, replacement_seconds=30.0,
                      restart_overhead_seconds=30.0,
                      policy=YoungDaly(),
                      taxonomy=TAXONOMY_PRESETS["gray-heavy"])
        tolerate = simulate_run(
            MODEL, JOB, CLUSTER,
            RunConfig(mitigation="tolerate", **kwargs))
        detect = simulate_run(
            MODEL, JOB, CLUSTER,
            RunConfig(mitigation="detect", **kwargs))
        assert tolerate.completed and detect.completed
        assert tolerate.counters["gray_failures"] >= 2
        assert detect.counters["evictions"] >= 1
        assert detect.counters["gray_detected"] >= 1
        assert tolerate.counters["evictions"] == 0
        assert detect.goodput_fraction > tolerate.goodput_fraction
        assert detect.goodput_fraction \
            == pytest.approx(0.5025755764288214, rel=1e-9)
        assert tolerate.goodput_fraction \
            == pytest.approx(0.3745840619433828, rel=1e-9)
        # Eviction trades a bounded fixed cost for an unbounded tax.
        assert detect.buckets["gray"] < tolerate.buckets["gray"]
        evict_decisions = [m for m in detect.mitigations
                           if m["decision"] == "evict"]
        assert evict_decisions
        for m in evict_decisions:
            assert m["projected_evict_seconds"] \
                < m["projected_tolerate_seconds"]
            assert m["localised"] is True


class TestDetectorModel:
    def test_latency_gates_detection(self):
        det = DetectorModel(latency_steps=3, false_negative_rate=0.0)
        rng = det.rng(0)
        assert not det.detects(0, rng)
        assert not det.detects(2, rng)
        assert det.detects(3, rng)

    def test_false_negatives_are_seeded_draws(self):
        det = DetectorModel(latency_steps=0, false_negative_rate=0.5)
        rng = det.rng(7)
        draws = [det.detects(1, rng) for _ in range(200)]
        assert 40 < sum(draws) < 160  # ~Binomial(200, 0.5)
        rng2 = det.rng(7)
        assert [det.detects(1, rng2) for _ in range(200)] == draws

    def test_false_positives(self):
        det = DetectorModel(false_positive_rate=0.99)
        rng = det.rng(0)
        assert any(det.false_alarm(rng) for _ in range(50))
        quiet = DetectorModel(false_positive_rate=0.0)
        assert not quiet.false_alarm(quiet.rng(0))

    def test_parse_detector(self):
        det = parse_detector("latency=4,fn=0.2,fp=0.05")
        assert det.latency_steps == 4
        assert det.false_negative_rate == 0.2
        assert det.false_positive_rate == 0.05
        with pytest.raises(ValueError):
            parse_detector("latency=4,bogus=1")
        with pytest.raises(ValueError):
            parse_detector("fn=1.5")

    def test_validation(self):
        with pytest.raises(ValueError):
            DetectorModel(latency_steps=-1)
        with pytest.raises(ValueError):
            DetectorModel(false_negative_rate=1.1)


class TestChooseMitigation:
    def test_evict_only_when_strictly_cheaper(self):
        decision, tol, evict = choose_mitigation(
            tax_seconds_per_step=1.0, remaining_steps=100,
            evict_fixed_seconds=50.0, evict_extra_per_step=0.0)
        assert decision == "evict" and evict < tol

        decision, tol, evict = choose_mitigation(
            tax_seconds_per_step=0.5, remaining_steps=100,
            evict_fixed_seconds=50.0, evict_extra_per_step=0.0)
        assert decision == "tolerate" and evict == tol == 50.0

    def test_degraded_replan_tips_the_balance(self):
        decision, _, _ = choose_mitigation(
            tax_seconds_per_step=1.0, remaining_steps=100,
            evict_fixed_seconds=50.0, evict_extra_per_step=0.6)
        assert decision == "tolerate"

    def test_zero_tax_never_evicts(self):
        decision, tol, _ = choose_mitigation(
            tax_seconds_per_step=0.0, remaining_steps=100,
            evict_fixed_seconds=0.0, evict_extra_per_step=0.0)
        assert decision == "tolerate" and tol == 0.0


def _golden_payload() -> str:
    return render_json(survivability_report(MODEL, CLUSTER, 32)) + "\n"


class TestGoldenSurvivability:
    def test_report_matches_golden_bytes(self):
        assert _golden_payload() == GOLDEN.read_text(encoding="utf-8"), (
            "survivability report changed; if intentional, regenerate "
            "with `PYTHONPATH=src python tests/test_resilience_tiered.py"
            " --regen`")

    def test_golden_schema_shape(self):
        rep = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert rep["schema"] == "repro.survivability/v1"
        assert rep["survivability"] == survivability_matrix()
        scenario = rep["scenario"]
        assert scenario["ngpu"] == 32
        assert scenario["tier_write_seconds"]["peer"] \
            < scenario["tier_write_seconds"]["remote"]


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        GOLDEN.write_text(_golden_payload(), encoding="utf-8")
        print(f"wrote {GOLDEN}")
    else:
        print("usage: python tests/test_resilience_tiered.py --regen")
