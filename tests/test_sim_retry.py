"""Collective timeout→retry→backoff semantics on the simulator timeline.

A failed collective attempt occupies its stream for the retry policy's
watchdog timeout (tagged ``retry``), each inter-attempt gap is a backoff
event (tagged ``retry`` + ``backoff``), and the successful attempt runs
last with the caller's own tags.  Because the ladder events are
``comm``-kind with nothing overlapping them, they surface verbatim in the
per-stream exposed-communication accounting — which is how ``repro run``
reports charge retry time against goodput.
"""

import pytest

from repro.faults.goodput import exposed_comm_by_stream
from repro.sim.collectives import (
    DEFAULT_COLLECTIVE_TIMEOUT_SECONDS,
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
)
from repro.sim.engine import Simulator

#: Small, hand-checkable ladder: timeout 2 s, backoffs 1 s then 2 s.
POLICY = RetryPolicy(max_retries=3, timeout_seconds=2.0,
                     backoff_base_seconds=1.0, backoff_multiplier=2.0)


class TestRetryPolicy:
    def test_default_timeout_is_the_shared_constant(self):
        assert (DEFAULT_RETRY_POLICY.timeout_seconds
                == DEFAULT_COLLECTIVE_TIMEOUT_SECONDS)

    def test_backoff_grows_exponentially(self):
        assert [POLICY.backoff_seconds(k) for k in range(3)] == [1.0, 2.0, 4.0]

    def test_retry_overhead_sums_timeouts_and_backoffs(self):
        # 2 failures: (2 + 1) + (2 + 2)
        assert POLICY.retry_overhead_seconds(2) == pytest.approx(7.0)
        assert POLICY.retry_overhead_seconds(0) == 0.0

    def test_exhaustion_boundary(self):
        assert not POLICY.exhausted_by(3)
        assert POLICY.exhausted_by(4)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_seconds=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_seconds=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)

    def test_to_dict_round_trips(self):
        assert RetryPolicy(**POLICY.to_dict()) == POLICY


class TestRetryLadder:
    def test_ladder_timing_names_and_tags(self):
        sim = Simulator()
        events = sim.run_collective([0, 1], "dp", 0.5, "grads",
                                    failed_attempts=2, retry_policy=POLICY)
        # try0 (2s) + backoff0 (1s) + try1 (2s) + backoff1 (2s) + success.
        assert events[0].start == pytest.approx(7.0)
        assert events[0].end == pytest.approx(7.5)
        names = [e.name for e in sim.events_for(0, stream="dp")]
        assert names == ["grads#try0", "grads#backoff0",
                         "grads#try1", "grads#backoff1", "grads"]
        by_name = {e.name: e for e in sim.events_for(1, stream="dp")}
        assert by_name["grads#try0"].tags == ("retry",)
        assert by_name["grads#backoff1"].tags == ("retry", "backoff")
        assert by_name["grads"].tags == ()

    def test_caller_tags_only_on_successful_attempt(self):
        sim = Simulator()
        sim.run_collective([0], "dp", 0.5, "grads", tags=("mine",),
                           failed_attempts=1, retry_policy=POLICY)
        by_name = {e.name: e for e in sim.events_for(0)}
        assert by_name["grads"].tags == ("mine",)
        assert by_name["grads#try0"].tags == ("mine", "retry")

    def test_zero_attempts_is_a_plain_collective(self):
        sim = Simulator()
        events = sim.run_collective([0, 1], "dp", 0.5, "grads",
                                    failed_attempts=0, retry_policy=POLICY)
        assert len(sim.events) == 2
        assert events[0].end == pytest.approx(0.5)

    def test_after_gates_the_first_attempt(self):
        sim = Simulator()
        gate = sim.run(0, "compute", 3.0, "fwd")
        sim.run_collective([0], "dp", 0.5, "grads", after={0: [gate]},
                           failed_attempts=1, retry_policy=POLICY)
        first = next(e for e in sim.events_for(0, stream="dp")
                     if e.name == "grads#try0")
        assert first.start == pytest.approx(3.0)

    def test_exhausted_budget_raises(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="retry budget"):
            sim.run_collective([0], "dp", 0.5, "grads",
                               failed_attempts=4, retry_policy=POLICY)
        with pytest.raises(ValueError, match="must be >= 0"):
            sim.run_collective([0], "dp", 0.5, "grads", failed_attempts=-1)

    def test_retry_ladder_counts_as_exposed_comm(self):
        """The whole ladder is comm time with no compute overlapping it,
        so it lands in the per-stream exposed-comm accounting."""
        sim = Simulator()
        gate = sim.run(0, "compute", 1.0, "fwd")
        sim.run_collective([0], "dp", 0.5, "grads", after={0: [gate]},
                           failed_attempts=1, retry_policy=POLICY)
        exposed = exposed_comm_by_stream(sim)
        # try0 (2) + backoff0 (1) + success (0.5), all after compute ended.
        assert exposed["dp"] == pytest.approx(3.5)

    def test_overlapped_ladder_is_not_exposed(self):
        sim = Simulator()
        sim.run(0, "compute", 10.0, "fwd")
        sim.run_collective([0], "dp", 0.5, "grads",
                           failed_attempts=1, retry_policy=POLICY)
        assert exposed_comm_by_stream(sim).get("dp", 0.0) == pytest.approx(0.0)
