"""Tests for the Section 5 planner — Table 2 reproduction."""

import pytest

from repro.hardware.cluster import GRAND_TETON_16K, grand_teton
from repro.model.config import LLAMA3_405B, LLAMA3_8B
from repro.parallel.config import (
    JobConfig,
    LLAMA3_405B_LONG_CONTEXT,
    LLAMA3_405B_SHORT_CONTEXT,
    ZeroStage,
)
from repro.parallel.memory import estimate_rank_memory
from repro.parallel.planner import (
    arithmetic_intensity_2d,
    hardware_flops_per_byte,
    plan_parallelism,
)


class TestTable2:
    """The headline planner result: Table 2 of the paper."""

    def test_short_context_row(self):
        plan = plan_parallelism(LLAMA3_405B, LLAMA3_405B_SHORT_CONTEXT,
                                GRAND_TETON_16K)
        p = plan.parallel
        assert (p.tp, p.cp, p.pp, p.dp) == (8, 1, 16, 128)
        assert plan.bs == 16

    def test_long_context_row(self):
        plan = plan_parallelism(LLAMA3_405B, LLAMA3_405B_LONG_CONTEXT,
                                GRAND_TETON_16K)
        p = plan.parallel
        assert (p.tp, p.cp, p.pp, p.dp) == (8, 16, 16, 8)
        assert plan.bs == 16

    def test_memory_fits_in_hbm(self):
        plan = plan_parallelism(LLAMA3_405B, LLAMA3_405B_SHORT_CONTEXT,
                                GRAND_TETON_16K)
        assert plan.estimated_rank0_memory_gb < 80.0

    def test_zero2_afab_because_bs_below_2pp(self):
        # Section 3.1.3 rule at bs = pp = 16.
        plan = plan_parallelism(LLAMA3_405B, LLAMA3_405B_SHORT_CONTEXT,
                                GRAND_TETON_16K)
        assert plan.parallel.zero is ZeroStage.ZERO_2
        assert plan.schedule == "afab"

    def test_zero1_1f1b_when_bs_large(self):
        # Halve the GPUs: dp shrinks, bs doubles to 32 = 2*pp.
        job = JobConfig(seq=8192, gbs=2048, ngpu=8192)
        plan = plan_parallelism(LLAMA3_405B, job, GRAND_TETON_16K)
        assert plan.bs >= 2 * plan.parallel.pp
        assert plan.parallel.zero is ZeroStage.ZERO_1
        assert plan.schedule == "1f1b"

    def test_rationale_is_recorded(self):
        plan = plan_parallelism(LLAMA3_405B, LLAMA3_405B_SHORT_CONTEXT,
                                GRAND_TETON_16K)
        text = plan.describe()
        assert "NVLink" in text
        assert "Section" in text


class TestPlannerReasoning:
    def test_arithmetic_intensity_2d(self):
        # The paper's example: 8K tokens -> 8K FLOPs/byte.
        assert arithmetic_intensity_2d(8192) == pytest.approx(8192)

    def test_hardware_ratio_19_78k(self):
        # 989 TFLOPs / 50 GB/s = 19.78K FLOPs/byte (Section 5.1).
        assert hardware_flops_per_byte(GRAND_TETON_16K) == pytest.approx(
            19780, rel=0.01
        )

    def test_small_model_needs_no_pipeline(self):
        job = JobConfig(seq=8192, gbs=512, ngpu=512)
        plan = plan_parallelism(LLAMA3_8B, job, grand_teton(512))
        assert plan.parallel.pp == 1

    def test_too_many_gpus_rejected(self):
        job = JobConfig(seq=8192, gbs=64, ngpu=128)
        with pytest.raises(ValueError):
            plan_parallelism(LLAMA3_8B, job, grand_teton(64))


class TestRankMemoryEstimator:
    from repro.parallel.config import ParallelConfig

    def test_zero_stage_ordering(self):
        """ZeRO-1 holds more memory than ZeRO-2 than ZeRO-3 (Figure 4's
        trade-off)."""
        from repro.parallel.config import ParallelConfig
        job = JobConfig(seq=8192, gbs=2048, ngpu=16384)
        peaks = {}
        for zero in ZeroStage:
            p = ParallelConfig(tp=8, cp=1, pp=16, dp=128, zero=zero)
            peaks[zero] = estimate_rank_memory(
                LLAMA3_405B, p, job, layers_on_rank=8,
                in_flight_microbatches=16, virtual_stages=8,
            ).total
        assert peaks[ZeroStage.ZERO_1] > peaks[ZeroStage.ZERO_2]
        assert peaks[ZeroStage.ZERO_2] > peaks[ZeroStage.ZERO_3]

    def test_recompute_saves_activation_memory(self):
        from repro.parallel.config import ParallelConfig
        job = JobConfig(seq=8192, gbs=2048, ngpu=16384)
        p = ParallelConfig(tp=8, cp=1, pp=16, dp=128)
        kwargs = dict(layers_on_rank=8, in_flight_microbatches=16,
                      virtual_stages=8)
        base = estimate_rank_memory(LLAMA3_405B, p, job, **kwargs)
        rec = estimate_rank_memory(LLAMA3_405B, p, job, recompute=True,
                                   **kwargs)
        assert rec.activations < 0.25 * base.activations

    def test_cp_reduces_activations_at_fixed_seq(self):
        """Section 4: CP shards the sequence, shrinking activation
        memory even as bs rises."""
        from repro.parallel.config import ParallelConfig
        job = JobConfig(seq=131072, gbs=128, ngpu=16384)
        kwargs = dict(layers_on_rank=8, in_flight_microbatches=16,
                      virtual_stages=8)
        no_cp = estimate_rank_memory(
            LLAMA3_405B, ParallelConfig(tp=8, cp=1, pp=16, dp=128),
            job, **kwargs)
        with_cp = estimate_rank_memory(
            LLAMA3_405B, ParallelConfig(tp=8, cp=16, pp=16, dp=8),
            job, **kwargs)
        assert with_cp.activations == pytest.approx(
            no_cp.activations / 16
        )

    def test_validation(self):
        from repro.parallel.config import ParallelConfig
        job = JobConfig(seq=8192, gbs=16, ngpu=16)
        p = ParallelConfig(tp=8, pp=2)
        with pytest.raises(ValueError):
            estimate_rank_memory(LLAMA3_405B, p, job, layers_on_rank=-1,
                                 in_flight_microbatches=1)
        with pytest.raises(ValueError):
            estimate_rank_memory(LLAMA3_405B, p, job, layers_on_rank=1,
                                 in_flight_microbatches=1, virtual_stages=0)
