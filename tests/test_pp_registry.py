"""The pluggable schedule registry (docs/schedules.md).

Covers the refactor's load-bearing guarantees:

* the three pre-refactor builders stay bitwise-identical, pinned to
  ``tests/golden/schedules_prerefactor.json``;
* registry metadata (order, aliases, name->entry resolution) drives the
  CLI choices and the fuzz sampler;
* every registered kind builds, executes deadlock-free, and passes the
  structural invariant battery;
* the zoo semantics: GPipe's LIFO drain vs AFAB, split backward's
  BI/BW structure and exact-sum pricing, DIP's heavy-first permutation,
  zero-bubble's bubble advantage over classic 1F1B;
* heterogeneity profiles change the priced timeline;
* the planner's schedule axis and the resilience run's pin-through.
"""

from __future__ import annotations

import json
import pathlib
import re

import numpy as np
import pytest

from repro.hardware.cluster import grand_teton
from repro.model.config import LLAMA3_8B
from repro.parallel.config import JobConfig, ParallelConfig, ZeroStage
from repro.parallel.planner import plan_parallelism
from repro.pp.layout import build_layout
from repro.pp.registry import (
    entry_for_name,
    schedule_entries,
    schedule_entry,
    schedule_kinds,
)
from repro.pp.schedule import (
    OpKind,
    ScheduleShape,
    build_afab_schedule,
    build_schedule,
)
from repro.pp.zoo import build_zero_bubble_schedule, microbatch_permutation
from repro.train.cost import StageCost
from repro.train.executor import execute_pipeline
from repro.train.step import simulate_step
from repro.verify.fuzz import FuzzConfig, check_config, run_fuzz, sample_config
from repro.verify.invariants import run_invariants
from repro.verify.oracles import oracle_bubble_regression

GOLDEN = pathlib.Path(__file__).parent / "golden" / "schedules_prerefactor.json"

_KEY = re.compile(r"^(?P<kind>[\w-]+)/pp(?P<pp>\d+)v(?P<v>\d+)"
                  r"nc(?P<nc>\d+)nmb(?P<nmb>\d+)$")


def _serialize(schedule) -> dict:
    return {
        "name": schedule.name,
        "programs": [
            [[op.kind.value, op.ppr, op.virtual_stage, op.microbatch]
             for op in prog]
            for prog in schedule.programs
        ],
    }


def _uniform_costs():
    fwd = lambda s: StageCost(1.0 * max(s.n_layers, 1), 0.0, 0.0)  # noqa: E731
    bwd = lambda s: StageCost(2.0 * max(s.n_layers, 1), 0.0, 0.0)  # noqa: E731
    return fwd, bwd


def _execute(schedule, shape):
    fwd, bwd = _uniform_costs()
    layout = build_layout(shape.pp * shape.v, shape.pp, shape.v)
    return execute_pipeline(schedule, layout, fwd, bwd, p2p_seconds=0.25)


class TestGoldenPin:
    """The pre-refactor programs, bitwise."""

    def test_every_pinned_entry_reproduces(self):
        pinned = json.loads(GOLDEN.read_text())
        assert len(pinned) == 17
        for key, want in pinned.items():
            m = _KEY.match(key)
            assert m, f"malformed golden key {key!r}"
            shape = ScheduleShape(pp=int(m["pp"]), v=int(m["v"]),
                                  nc=int(m["nc"]), nmb=int(m["nmb"]))
            built = schedule_entry(m["kind"]).builder(shape)
            assert _serialize(built) == want, f"{key} drifted"
            # The legacy dispatcher is the same code path.
            assert _serialize(build_schedule(shape, m["kind"])) == want

    def test_pin_covers_all_three_legacy_kinds(self):
        kinds = {k.split("/")[0] for k in json.loads(GOLDEN.read_text())}
        assert kinds == {"flexible", "1f1b", "afab"}


class TestRegistry:
    def test_registration_order_is_the_cli_order(self):
        assert schedule_kinds() == (
            "flexible", "1f1b", "afab", "gpipe", "1f1b-noninterleaved",
            "zero-bubble", "dip")

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="no-such"):
            schedule_entry("no-such")

    def test_entries_align_with_kinds(self):
        assert tuple(e.kind for e in schedule_entries()) == schedule_kinds()

    def test_entry_for_name_resolves_aliases(self):
        assert entry_for_name("zero-bubble").kind == "zero-bubble"
        assert entry_for_name("flexible-degenerate-afab").kind == "flexible"
        assert entry_for_name("dip-degenerate-afab").kind == "dip"
        assert entry_for_name("made-up") is None

    def test_shared_alias_first_registered_wins(self):
        # Both flexible and 1f1b may emit "1f1b-interleaved".
        assert entry_for_name("1f1b-interleaved").kind == "flexible"

    def test_split_backward_flag_matches_programs(self):
        for e in schedule_entries():
            shape = ScheduleShape(pp=2, v=1, nc=2, nmb=4)
            if e.constrain is not None:
                shape = e.constrain(shape)
            built = e.builder(shape)
            assert built.uses_split_backward == e.split_backward, e.kind


class TestEveryKindBuildsAndVerifies:
    SHAPES = (ScheduleShape(pp=2, v=2, nc=2, nmb=4),
              ScheduleShape(pp=4, v=1, nc=4, nmb=8),
              ScheduleShape(pp=3, v=2, nc=1, nmb=3))

    @pytest.mark.parametrize("kind", schedule_kinds())
    @pytest.mark.parametrize("shape", SHAPES, ids=str)
    def test_invariants_clean(self, kind, shape):
        entry = schedule_entry(kind)
        if entry.constrain is not None:
            shape = entry.constrain(shape)
        reason = entry.unsupported_reason(shape)
        if reason:
            pytest.skip(reason)
        schedule = entry.builder(shape)
        run = _execute(schedule, schedule.shape)
        report = run_invariants(schedule, run)
        assert report.ok, [v.message for v in report.violations]
        assert run.makespan > 0

    @pytest.mark.parametrize("kind", schedule_kinds())
    def test_supports_rejections_raise_in_builder(self, kind):
        entry = schedule_entry(kind)
        shape = ScheduleShape(pp=2, v=2, nc=2, nmb=4)
        reason = entry.unsupported_reason(shape)
        if not reason:
            pytest.skip(f"{kind} supports v=2")
        with pytest.raises(ValueError):
            entry.builder(shape)


class TestZooSemantics:
    def test_gpipe_drains_lifo_where_afab_drains_in_order(self):
        shape = ScheduleShape(pp=2, v=1, nc=4, nmb=4)
        gpipe = schedule_entry("gpipe").builder(shape)
        afab = build_afab_schedule(shape)
        g_fwd = [op.microbatch for op in gpipe.program(0)
                 if op.kind is OpKind.FORWARD]
        a_fwd = [op.microbatch for op in afab.program(0)
                 if op.kind is OpKind.FORWARD]
        assert g_fwd == a_fwd == [0, 1, 2, 3]
        g_bwd = [op.microbatch for op in gpipe.program(0)
                 if op.kind is OpKind.BACKWARD]
        a_bwd = [op.microbatch for op in afab.program(0)
                 if op.kind is OpKind.BACKWARD]
        assert a_bwd == [0, 1, 2, 3]
        assert g_bwd == [3, 2, 1, 0]

    def test_zero_bubble_program_structure(self):
        shape = ScheduleShape(pp=4, v=1, nc=4, nmb=8)
        zb = build_zero_bubble_schedule(shape)
        assert zb.uses_split_backward
        for ppr in range(4):
            kinds = [op.kind for op in zb.program(ppr)]
            assert kinds.count(OpKind.FORWARD) == 8
            assert kinds.count(OpKind.BACKWARD_INPUT) == 8
            assert kinds.count(OpKind.BACKWARD_WEIGHT) == 8
            assert OpKind.BACKWARD not in kinds
            # Each micro-batch's BW follows its BI (the grads need the
            # input-grad pass's intermediates).
            for mb in range(8):
                bi = next(i for i, op in enumerate(zb.program(ppr))
                          if op.kind is OpKind.BACKWARD_INPUT
                          and op.microbatch == mb)
                bw = next(i for i, op in enumerate(zb.program(ppr))
                          if op.kind is OpKind.BACKWARD_WEIGHT
                          and op.microbatch == mb)
                assert bi < bw

    def test_zero_bubble_beats_classic_1f1b_bubble(self):
        for pp, nmb in ((4, 8), (8, 16)):
            shape = ScheduleShape(pp=pp, v=1, nc=pp, nmb=nmb)
            runs = {}
            for kind in ("zero-bubble", "1f1b-noninterleaved"):
                schedule = schedule_entry(kind).builder(shape)
                runs[kind] = _execute(schedule, shape)
            assert (runs["zero-bubble"].mean_bubble_ratio
                    < runs["1f1b-noninterleaved"].mean_bubble_ratio)

    def test_split_backward_prices_sum_exactly(self):
        # BI + BW durations must tile the fused backward bitwise, so the
        # split conserves total work on the timeline.
        shape = ScheduleShape(pp=2, v=1, nc=2, nmb=4)
        fwd, bwd = _uniform_costs()
        layout = build_layout(2, 2, 1)
        fused = execute_pipeline(
            schedule_entry("1f1b-noninterleaved").builder(shape), layout,
            fwd, bwd, p2p_seconds=0.0)
        split = execute_pipeline(
            schedule_entry("zero-bubble").builder(shape), layout,
            fwd, bwd, p2p_seconds=0.0)
        busy = lambda run, r: run.sim.busy_time(r, "compute")  # noqa: E731
        for rank in range(2):
            assert busy(split, rank) == busy(fused, rank)

    def test_dip_permutes_heavy_first_and_defaults_to_identity(self):
        uniform = ScheduleShape(pp=2, v=1, nc=2, nmb=4)
        assert microbatch_permutation(uniform) == [0, 1, 2, 3]
        heavy = ScheduleShape(pp=2, v=1, nc=2, nmb=4,
                              microbatch_compute_scale=(0.5, 2.0, 1.0, 1.5))
        # Rounds are [0, 1] and [2, 3]; heavy-first within each round.
        assert microbatch_permutation(heavy) == [1, 0, 3, 2]
        dip = schedule_entry("dip").builder(heavy)
        flex = build_schedule(uniform, "flexible")
        assert ([op.kind for op in dip.program(0)]
                == [op.kind for op in flex.program(0)])
        run = _execute(dip, heavy)
        assert run_invariants(dip, run).ok


class TestHeterogeneity:
    JOB = JobConfig(seq=8192, gbs=8, ngpu=8)
    PAR = ParallelConfig(tp=2, cp=1, pp=2, dp=2, zero=ZeroStage.ZERO_2)

    def _step(self, **kwargs):
        return simulate_step(LLAMA3_8B, self.PAR, self.JOB,
                             grand_teton(8), **kwargs)

    def test_stage_preset_changes_the_priced_step(self):
        base = self._step()
        vit = self._step(stage_preset="vit-encoder")
        assert vit.step_seconds != base.step_seconds

    def test_microbatch_profile_changes_the_priced_step(self):
        base = self._step()
        het = self._step(microbatch_compute_scale=[1.0, 2.0, 1.0, 1.0])
        assert het.step_seconds > base.step_seconds

    def test_preset_and_explicit_profile_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            self._step(stage_preset="vit-encoder",
                       stage_compute_scale=[1.0] * 32)

    def test_report_names_the_built_schedule(self):
        assert self._step().schedule == "1f1b-interleaved"
        assert self._step(
            schedule_kind="zero-bubble").schedule == "zero-bubble"

    def test_v1_kinds_coerce_the_default_interleaving(self):
        # Without an explicit v, zero-bubble must not inherit the
        # flexible default v = layers/pp (its builder requires v=1).
        rep = self._step(schedule_kind="zero-bubble")
        assert rep.step_seconds > 0


class TestFuzzKindSampling:
    def test_sampler_draws_from_the_whole_registry(self):
        rng = np.random.default_rng(0)
        seen = {sample_config(rng).kind for _ in range(300)}
        assert seen == set(schedule_kinds())

    def test_kinds_filter_restricts_sampling(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert sample_config(rng, kinds=("gpipe",)).kind == "gpipe"

    def test_check_config_builds_the_sampled_kind(self):
        config = FuzzConfig(pp=2, v=1, nc=2, nmb=4, kind="zero-bubble")
        report = check_config(config)
        assert report.ok, [v.message for v in report.violations]

    @pytest.mark.parametrize("kind", schedule_kinds())
    def test_per_kind_campaign_is_clean(self, kind):
        result = run_fuzz(15, seed=0, kinds=(kind,))
        assert result.ok, result.failures


class TestPlannerScheduleAxis:
    CLUSTER = grand_teton(64)
    JOB = JobConfig(seq=8192, gbs=64, ngpu=64)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            plan_parallelism(LLAMA3_8B, self.JOB, self.CLUSTER,
                             schedule_kind="nope")

    def test_flexible_pin_reproduces_the_default_plan(self):
        base = plan_parallelism(LLAMA3_8B, self.JOB, self.CLUSTER)
        pinned = plan_parallelism(LLAMA3_8B, self.JOB, self.CLUSTER,
                                  schedule_kind="flexible")
        assert pinned.parallel == base.parallel
        assert pinned.bs == base.bs

    def test_all_sweeps_the_kind_axis_cost_aware(self):
        plan = plan_parallelism(LLAMA3_8B, self.JOB, self.CLUSTER,
                                cost_aware=True, schedule_kind="all")
        assert plan.schedule in schedule_kinds()
        kinds_seen = {c.get("schedule_kind") for c in plan.candidates}
        assert kinds_seen >= set(schedule_kinds())
        assert f"schedule={plan.schedule}" in plan.rationale[-1]

    def test_pinned_kind_wins_its_own_axis(self):
        plan = plan_parallelism(LLAMA3_8B, self.JOB, self.CLUSTER,
                                cost_aware=True, schedule_kind="gpipe")
        assert plan.schedule == "gpipe"
        feasible = [c for c in plan.candidates if c["feasible"]]
        assert feasible
        assert all(c["schedule_kind"] == "gpipe" for c in feasible)


class TestResilienceSchedulePin:
    JOB = JobConfig(seq=8192, gbs=32, ngpu=32)

    def test_run_pins_every_segment(self):
        from repro.resilience import RunConfig, YoungDaly, simulate_run

        config = RunConfig(steps=10, mtbf_seconds=500.0, seed=1,
                           elastic=False, replacement_seconds=100.0,
                           policy=YoungDaly())
        base = simulate_run(LLAMA3_8B, self.JOB, grand_teton(32), config)
        pinned = simulate_run(LLAMA3_8B, self.JOB, grand_teton(32), config,
                              schedule_kind="gpipe")
        # GPipe prices a slower healthy step than the planner's pick.
        assert pinned.ideal_step_seconds > base.ideal_step_seconds

    def test_unknown_kind_rejected(self):
        from repro.resilience import NoCheckpoint, RunConfig, simulate_run

        with pytest.raises(ValueError):
            simulate_run(LLAMA3_8B, self.JOB, grand_teton(32),
                         RunConfig(steps=1, mtbf_seconds=500.0,
                                   policy=NoCheckpoint()),
                         schedule_kind="nope")


class TestBubbleOracle:
    def test_clean_on_the_current_builders(self):
        result = oracle_bubble_regression()
        assert result.ok, [v.message for v in result.violations]
        assert "zero-bubble" in result.context["bubble_ratios"]
