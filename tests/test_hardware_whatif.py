"""Tests for the Section 8 hardware what-if experiments."""

import numpy as np
import pytest

from repro.hardware.cluster import grand_teton
from repro.hardware.whatif import (
    dvfs_jitter_inflation,
    hbm_capacity_sweep,
    oversubscription_sweep,
    perf_per_watt,
)
from repro.model.config import LLAMA3_405B_SCALED_26L
from repro.parallel.config import JobConfig, ParallelConfig, ZeroStage

CLUSTER = grand_teton(2048)
JOB = JobConfig(seq=8192, gbs=512, ngpu=2048)


class TestHbmCapacitySweep:
    def test_more_hbm_never_hurts(self):
        points = hbm_capacity_sweep(
            LLAMA3_405B_SCALED_26L, JOB, CLUSTER,
            capacities_gb=(40, 60, 80, 120), v=7,
        )
        tflops = [p.tflops_per_gpu for p in points]
        assert all(b >= a for a, b in zip(tflops, tflops[1:]))

    def test_capacity_unlocks_lower_tp(self):
        """Section 8.1: with enough HBM, tp=4 beats tp=8 — the sweep
        should switch to a smaller TP as capacity grows."""
        points = hbm_capacity_sweep(
            LLAMA3_405B_SCALED_26L, JOB, CLUSTER,
            capacities_gb=(30, 120), v=7,
        )
        assert points[0].best_tp is not None
        assert points[1].best_tp is not None
        assert points[1].best_tp <= points[0].best_tp
        assert points[1].tflops_per_gpu > points[0].tflops_per_gpu

    def test_too_small_capacity_infeasible(self):
        points = hbm_capacity_sweep(
            LLAMA3_405B_SCALED_26L, JOB, CLUSTER, capacities_gb=(4,), v=7,
        )
        assert points[0].best_tp is None
        assert points[0].tflops_per_gpu == 0.0


class TestDvfsJitter:
    def test_deterministic_costs_only_the_mean(self):
        rep = dvfs_jitter_inflation(world_size=1024, slowdown_mean=0.02)
        assert rep.deterministic_inflation == pytest.approx(0.02)

    def test_jitter_costs_the_tail(self):
        """Transient per-rank slowdowns inflate elapsed time far beyond
        their mean — the Section 8.1 determinism argument."""
        rep = dvfs_jitter_inflation(world_size=1024, slowdown_mean=0.02)
        assert rep.jitter_inflation > 4 * rep.deterministic_inflation

    def test_inflation_grows_with_world_size(self):
        small = dvfs_jitter_inflation(world_size=8,
                                      rng=np.random.default_rng(1))
        large = dvfs_jitter_inflation(world_size=8192,
                                      rng=np.random.default_rng(1))
        assert large.jitter_inflation > small.jitter_inflation

    def test_single_rank_jitter_near_mean(self):
        rep = dvfs_jitter_inflation(world_size=1, sync_points=20000,
                                    slowdown_mean=0.02)
        assert rep.jitter_inflation == pytest.approx(0.02, rel=0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            dvfs_jitter_inflation(world_size=0)


class TestOversubscription:
    def test_throughput_degrades_monotonically(self):
        par = ParallelConfig(tp=8, cp=1, pp=4, dp=64, zero=ZeroStage.ZERO_1)
        out = oversubscription_sweep(
            LLAMA3_405B_SCALED_26L, par, JOB, CLUSTER,
            factors=(1.0, 4.0, 16.0), v=7,
        )
        assert out[1.0] > out[4.0] > out[16.0]

    def test_mild_oversubscription_cheap(self):
        """The Section 8.2 argument for oversubscribed upper tiers: 2x
        oversubscription costs only a few percent when inter-node traffic
        is P2P-light."""
        par = ParallelConfig(tp=8, cp=1, pp=4, dp=64, zero=ZeroStage.ZERO_1)
        out = oversubscription_sweep(
            LLAMA3_405B_SCALED_26L, par, JOB, CLUSTER, factors=(1.0, 2.0),
            v=7,
        )
        assert out[2.0] > 0.9 * out[1.0]


class TestErrorPaths:
    def test_empty_capacity_sweep_rejected(self):
        with pytest.raises(ValueError, match="at least one capacity"):
            hbm_capacity_sweep(
                LLAMA3_405B_SCALED_26L, JOB, CLUSTER, capacities_gb=(), v=7)

    def test_oversubscription_factor_below_one_rejected(self):
        par = ParallelConfig(tp=8, cp=1, pp=4, dp=64, zero=ZeroStage.ZERO_1)
        with pytest.raises(ValueError, match=">= 1.0"):
            oversubscription_sweep(
                LLAMA3_405B_SCALED_26L, par, JOB, CLUSTER,
                factors=(0.5,), v=7)


class TestPerfPerWatt:
    def test_value(self):
        assert perf_per_watt(400.0, CLUSTER) == pytest.approx(400 / 700)

    def test_validation(self):
        with pytest.raises(ValueError):
            perf_per_watt(-1.0, CLUSTER)
