"""The multi-step run simulator: goodput ordering, accounting invariants,
elastic replanning, and the byte-stable ``repro.resilience/v2`` golden.

The comparison scenario (8B on 32 GPUs, 200 steps, MTBF 150 s, seed 11)
is chosen so the one failure sequence exercises all three failure kinds —
a permanent node loss, a transient straggler, and collective retry
ladders — and so the Young/Daly interval strictly beats both extremes:
never checkpointing (maximum rework) and checkpointing every step
(maximum write overhead).

Regenerate the golden after an intentional schema change with::

    PYTHONPATH=src python tests/test_resilience_run.py --regen
"""

import functools
import json
from pathlib import Path

import pytest

from repro.faults.goodput import exposed_comm_by_stream
from repro.hardware.cluster import grand_teton
from repro.model.config import LLAMA3_8B
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import render_json, resilience_report
from repro.parallel.config import JobConfig
from repro.resilience import (
    BUCKETS,
    FixedInterval,
    NoCheckpoint,
    RunConfig,
    YoungDaly,
    parse_policy,
    simulate_run,
)

GOLDEN = Path(__file__).parent / "golden" / "resilience_run.json"
GOLDEN_V1 = Path(__file__).parent / "golden" / "resilience_run_v1.json"

MODEL = LLAMA3_8B
JOB = JobConfig(seq=8192, gbs=32, ngpu=32)
CLUSTER = grand_teton(32)


def _config(policy, **overrides):
    """The pinned comparison scenario; see the module docstring."""
    base = dict(steps=200, mtbf_seconds=150.0, seed=11, elastic=False,
                replacement_seconds=300.0, node_loss_fraction=0.35,
                retry_fraction=0.45)
    base.update(overrides)
    return RunConfig(policy=policy, **base)


@functools.lru_cache(maxsize=None)
def _run(policy_spec: str):
    return simulate_run(MODEL, JOB, CLUSTER, _config(parse_policy(policy_spec)))


class TestPolicyOrdering:
    def test_young_daly_beats_both_extremes(self):
        yd = _run("young-daly")
        none = _run("none")
        frequent = _run("fixed:1")
        assert yd.completed and none.completed and frequent.completed
        assert yd.goodput_fraction > none.goodput_fraction
        assert yd.goodput_fraction > frequent.goodput_fraction

    def test_extremes_fail_in_the_expected_direction(self):
        # Never checkpointing wastes rework; every-step wastes write time.
        none = _run("none")
        frequent = _run("fixed:1")
        assert none.buckets["rework"] > _run("young-daly").buckets["rework"]
        assert frequent.buckets["checkpoint"] \
            > _run("young-daly").buckets["checkpoint"]

    def test_same_seed_same_failure_sequence_across_policies(self):
        runs = [_run(s) for s in ("young-daly", "none", "fixed:1")]
        shortest = min(len(r.failures) for r in runs)
        assert shortest > 0
        strip = [
            [(f["time_seconds"], f["kind"]) for f in r.failures[:shortest]]
            for r in runs
        ]
        assert strip[0] == strip[1] == strip[2]

    def test_scenario_exercises_every_failure_kind(self):
        c = _run("young-daly").counters
        assert c["node_losses"] >= 1
        assert c["transient_stragglers"] >= 1
        assert c["retry_ladders"] >= 1


class TestAccountingInvariants:
    @pytest.mark.parametrize("spec", ["young-daly", "none", "fixed:1"])
    def test_buckets_sum_to_elapsed(self, spec):
        r = _run(spec)
        assert sum(r.buckets.values()) == pytest.approx(
            r.elapsed_seconds, rel=1e-9)
        assert set(r.buckets) == set(BUCKETS)
        assert all(v >= 0 for v in r.buckets.values())

    @pytest.mark.parametrize("spec", ["young-daly", "none", "fixed:1"])
    def test_timeline_makespan_equals_elapsed(self, spec):
        r = _run(spec)
        assert r.sim.makespan() == pytest.approx(r.elapsed_seconds, abs=1e-9)

    def test_goodput_is_committed_work_over_elapsed(self):
        r = _run("young-daly")
        assert r.goodput_fraction == pytest.approx(
            r.steps_completed * r.ideal_step_seconds / r.elapsed_seconds)
        assert 0 < r.goodput_fraction < 1
        assert r.achieved_tokens == r.steps_completed * JOB.tokens_per_step

    def test_retry_ladders_are_exposed_comm_on_the_dp_stream(self):
        r = _run("young-daly")
        assert r.counters["retry_ladders"] >= 1
        retry_tagged = [e for e in r.sim.events if "retry" in e.tags]
        assert retry_tagged and all(e.kind == "comm" for e in retry_tagged)
        assert exposed_comm_by_stream(r.sim)["dp"] == pytest.approx(
            r.buckets["retry"])

    def test_metrics_registry_mirrors_the_buckets(self):
        metrics = MetricsRegistry()
        r = simulate_run(MODEL, JOB, CLUSTER,
                         _config(YoungDaly()), metrics=metrics)
        values = metrics.get("run.seconds").values
        by_bucket = {dict(labels)["bucket"]: v
                     for labels, v in values.items()}
        for name in BUCKETS:
            assert by_bucket[name] == pytest.approx(r.buckets[name])
        assert by_bucket["elapsed"] == pytest.approx(r.elapsed_seconds)


class TestElasticReplanning:
    def test_node_loss_replans_and_continues_degraded(self):
        cfg = RunConfig(steps=60, mtbf_seconds=200.0,
                        policy=FixedInterval(10), seed=2, elastic=True,
                        node_loss_fraction=1.0, retry_fraction=0.0)
        r = simulate_run(MODEL, JOB, CLUSTER, cfg)
        assert r.completed
        assert r.counters["node_losses"] >= 1
        assert r.counters["replans"] >= 1
        # The replanned fleet is smaller, node-aligned, and feasible.
        assert len(r.segments) >= 2
        shrunk = r.segments[-1]
        assert shrunk["plan_ngpu"] < JOB.ngpu
        assert shrunk["plan_ngpu"] % CLUSTER.gpus_per_node == 0
        assert shrunk["step_seconds"] > r.ideal_step_seconds
        # The throughput loss is accounted, not hidden.
        assert r.buckets["degraded"] > 0
        assert r.elapsed_seconds > r.ideal_seconds
        assert r.goodput_fraction < 1.0
        markers = [e.name for e in r.sim.events if e.kind == "marker"]
        assert any(m.startswith("replan:") for m in markers)

    def test_fleet_exhaustion_truncates_with_a_reason(self):
        cfg = RunConfig(steps=50, mtbf_seconds=5.0, policy=YoungDaly(),
                        seed=0, elastic=True, node_loss_fraction=1.0,
                        retry_fraction=0.0)
        r = simulate_run(MODEL, JOB, CLUSTER, cfg)
        assert not r.completed
        assert "no feasible plan" in r.truncated_reason
        # Truncated in-flight work is still accounted for.
        assert sum(r.buckets.values()) == pytest.approx(
            r.elapsed_seconds, rel=1e-9)

    def test_wait_for_replacement_keeps_the_fleet(self):
        cfg = RunConfig(steps=60, mtbf_seconds=200.0,
                        policy=FixedInterval(10), seed=2, elastic=False,
                        replacement_seconds=300.0,
                        node_loss_fraction=1.0, retry_fraction=0.0)
        r = simulate_run(MODEL, JOB, CLUSTER, cfg)
        assert r.completed
        assert r.counters["replans"] == 0
        assert len(r.segments) == 1
        assert r.buckets["waiting"] > 0
        assert r.buckets["degraded"] == 0.0

    def test_attempt_limit_truncates_hopeless_runs(self):
        cfg = RunConfig(steps=10, mtbf_seconds=0.5, policy=NoCheckpoint(),
                        seed=0, elastic=False, replacement_seconds=10.0,
                        max_step_attempts=30)
        r = simulate_run(MODEL, JOB, CLUSTER, cfg)
        assert not r.completed
        assert "gave up" in r.truncated_reason
        assert r.counters["steps_attempted"] == 30


def _golden_payload() -> str:
    return render_json(resilience_report(_run("young-daly"))) + "\n"


class TestGoldenResilienceReport:
    def test_report_matches_golden_bytes(self):
        assert _golden_payload() == GOLDEN.read_text(encoding="utf-8"), (
            "resilience report changed; if intentional, regenerate with "
            "`PYTHONPATH=src python tests/test_resilience_run.py --regen`")

    def test_golden_schema_shape(self):
        rep = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert rep["schema"] == "repro.resilience/v2"
        assert set(rep) >= {"parallel", "job", "config", "policy",
                            "interval_steps", "tier_intervals",
                            "tier_writes", "ideal_step_seconds",
                            "elapsed_seconds", "steps_completed",
                            "completed", "goodput", "buckets_seconds",
                            "counters", "failures", "segments",
                            "restores", "mitigations"}
        assert rep["completed"] is True
        assert rep["policy"]["kind"] == "young_daly"
        assert 0 < rep["goodput"]["fraction"] < 1
        assert set(rep["buckets_seconds"]) == set(BUCKETS)
        assert rep["config"]["taxonomy"]["node_loss_fraction"] == 0.35
        assert rep["config"]["mitigation"] == "tolerate"

    def test_report_is_deterministic(self):
        assert _golden_payload() == _golden_payload()


def _subset_equal(old, new, path=""):
    """Every value in ``old`` must appear bit-identically in ``new``;
    ``new`` may add dict keys (but never list elements)."""
    problems = []
    if isinstance(old, dict):
        if not isinstance(new, dict):
            return [f"{path}: dict became {type(new).__name__}"]
        for key, value in old.items():
            if key not in new:
                problems.append(f"{path}/{key}: missing")
            else:
                problems += _subset_equal(value, new[key], f"{path}/{key}")
    elif isinstance(old, list):
        if not isinstance(new, list) or len(new) != len(old):
            return [f"{path}: list changed shape"]
        for i, value in enumerate(old):
            problems += _subset_equal(value, new[i], f"{path}[{i}]")
    elif old != new or type(old) is not type(new):
        problems.append(f"{path}: {old!r} -> {new!r}")
    return problems


class TestLegacyEquivalence:
    """The v2 schema is strictly additive over the archived v1 golden:
    a legacy iid / fail-stop / remote-only config reproduces every v1
    number bit-for-bit."""

    def test_v2_report_reproduces_v1_numbers_exactly(self):
        old = json.loads(GOLDEN_V1.read_text(encoding="utf-8"))
        new = json.loads(GOLDEN.read_text(encoding="utf-8"))
        old.pop("schema")  # the one intentional change
        problems = _subset_equal(old, new)
        assert not problems, "\n".join(problems)

    def test_v1_archive_is_frozen(self):
        old = json.loads(GOLDEN_V1.read_text(encoding="utf-8"))
        assert old["schema"] == "repro.resilience/v1"
        assert old["elapsed_seconds"] == 735.5540104127776
        # The archive itself must never be regenerated: its bytes are
        # the contract that v2 additions stay additive.
        assert "tier_intervals" not in old
        assert "gray" not in old["buckets_seconds"]


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        GOLDEN.write_text(_golden_payload(), encoding="utf-8")
        print(f"wrote {GOLDEN}")
    else:
        print("usage: python tests/test_resilience_run.py --regen")
