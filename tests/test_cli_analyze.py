"""CLI tests for ``repro analyze`` and the ``repro.analysis/v1`` golden.

The committed reference (``tests/golden/analysis_step.json``) is the
``--json`` report of a faulted 8b step on the 8-GPU (tp=2, pp=2, dp=2)
mesh, diffed against its healthy baseline.  It must stay **byte-stable**;
regenerate after an intentional schema change with::

    PYTHONPATH=src python tests/test_cli_analyze.py --regen
"""

import contextlib
import io
import json
from pathlib import Path

from repro.cli import main

GOLDEN = Path(__file__).parent / "golden" / "analysis_step.json"

SMALL = ["--model", "8b", "--ngpu", "8", "--gbs", "8",
         "--tp", "2", "--cp", "1", "--pp", "2", "--dp", "2"]

GOLDEN_ARGS = ["analyze", *SMALL,
               "--fault", "straggler:rank=2,extra=0.25",
               "--top", "5", "--json"]


def _stdout_of(argv) -> str:
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        rc = main(argv)
    assert rc == 0
    return buf.getvalue()


def _rc(argv, capsys) -> int:
    """Exit code of a CLI invocation that may sys.exit."""
    try:
        return main(argv)
    except SystemExit as err:
        return int(err.code)
    finally:
        capsys.readouterr()


class TestGolden:
    def test_matches_golden_bytes(self):
        assert _stdout_of(GOLDEN_ARGS) == GOLDEN.read_text(
            encoding="utf-8"), (
            "analysis report changed; if intentional, regenerate with "
            "`PYTHONPATH=src python tests/test_cli_analyze.py --regen`")

    def test_golden_schema_and_content(self):
        obj = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert obj["schema"] == "repro.analysis/v1"
        assert obj["critical_path"]["exact"] is True
        assert obj["critical_path"]["path_seconds"] == \
            obj["critical_path"]["makespan_seconds"]
        assert len(obj["critical_path"]["top_entries"]) == 5
        top_blame = obj["diff"]["blame"][0]
        assert (top_blame["kind"], top_blame["stream"]) == \
            ("compute", "compute")
        assert top_blame["n_faulted"] > 0

    def test_report_is_deterministic(self):
        assert _stdout_of(GOLDEN_ARGS) == _stdout_of(GOLDEN_ARGS)


class TestAnalyzeModes:
    def test_critical_path_text(self, capsys):
        assert main(["analyze", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "tiles the makespan exactly" in out
        assert "top 10 path ops" in out

    def test_critical_path_chain(self, capsys):
        assert main(["analyze", *SMALL, "--critical-path"]) == 0
        out = capsys.readouterr().out
        assert "chain (chronological):" in out
        assert "via origin" in out

    def test_fault_diff_text(self, capsys):
        assert main(["analyze", *SMALL,
                     "--fault", "straggler:rank=2,extra=0.25"]) == 0
        out = capsys.readouterr().out
        assert "regression:" in out
        assert "compute/compute" in out
        assert "tagged faulted" in out

    def test_diff_against_exported_trace(self, tmp_path, capsys):
        path = tmp_path / "base.json"
        assert main(["trace", "--cmd", "step", *SMALL,
                     "--out", str(path)]) == 0
        capsys.readouterr()
        assert main(["analyze", *SMALL, "--diff", str(path), "--json"]) == 0
        obj = json.loads(capsys.readouterr().out)
        # Same config, same simulator: every aligned op diffs to zero.
        assert obj["diff"]["regression_seconds"] == 0.0
        assert obj["diff"]["n_matched"] > 0
        assert obj["diff"]["unmatched"]["baseline"]["ops"] == 0
        assert obj["diff"]["blame"] == []

    def test_ingest_file(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["trace", "--cmd", "step", *SMALL,
                     "--out", str(path)]) == 0
        capsys.readouterr()
        assert main(["analyze", "--ingest", str(path), "--top", "3",
                     "--json"]) == 0
        obj = json.loads(capsys.readouterr().out)
        assert obj["schema"] == "repro.analysis/v1"
        assert obj["ingest"]["n_events"] > 0
        assert len(obj["ingest"]["top_slowest"]) == 3

    def test_ingest_stdin_dash(self, tmp_path, capsys, monkeypatch):
        path = tmp_path / "trace.json"
        assert main(["trace", "--cmd", "step", *SMALL,
                     "--out", str(path)]) == 0
        capsys.readouterr()
        import sys as _sys

        with open(path, encoding="utf-8") as fh:
            monkeypatch.setattr(_sys, "stdin", fh)
            assert main(["analyze", "--ingest", "-", "--json"]) == 0
        obj = json.loads(capsys.readouterr().out)
        assert obj["ingest"]["n_events"] > 0

    def test_trace_export_with_annotations(self, tmp_path, capsys):
        from repro.obs.trace import validate_trace

        path = tmp_path / "annotated.json"
        assert main(["analyze", *SMALL, "--trace", str(path)]) == 0
        capsys.readouterr()
        obj = json.loads(path.read_text(encoding="utf-8"))
        assert validate_trace(obj) == []
        cp_rows = [r for r in obj["traceEvents"]
                   if r.get("cat") == "critical_path"]
        phases = [r["ph"] for r in cp_rows]
        assert phases.count("s") == 1
        assert phases.count("f") == 1
        assert phases.count("i") == 1
        assert any(r["name"] == "critical-path:makespan" for r in cp_rows)


class TestUsageErrors:
    """All analyze usage errors exit 2 (the PR 1 convention)."""

    def test_top_zero(self, capsys):
        assert _rc(["analyze", *SMALL, "--top", "0"], capsys) == 2

    def test_bad_blame_threshold(self, capsys):
        assert _rc(["analyze", *SMALL, "--blame-threshold", "1.5"],
                   capsys) == 2

    def test_ingest_with_diff(self, capsys):
        assert _rc(["analyze", "--ingest", "x.json", "--diff", "y.json"],
                   capsys) == 2

    def test_ingest_with_fault(self, capsys):
        assert _rc(["analyze", "--ingest", "x.json",
                    "--fault", "straggler:rank=0"], capsys) == 2

    def test_ingest_with_critical_path(self, capsys):
        assert _rc(["analyze", "--ingest", "x.json", "--critical-path"],
                   capsys) == 2

    def test_diff_with_fault(self, capsys):
        assert _rc(["analyze", *SMALL, "--diff", "x.json",
                    "--fault", "straggler:rank=0"], capsys) == 2

    def test_bad_fault_spec(self, capsys):
        assert _rc(["analyze", *SMALL, "--fault", "bogus"], capsys) == 2

    def test_world_size_mismatch(self, capsys):
        assert _rc(["analyze", "--ngpu", "64", "--tp", "8", "--pp", "2",
                    "--dp", "2"], capsys) == 2

    def test_missing_ingest_file(self, capsys):
        assert _rc(["analyze", "--ingest", "/nonexistent/trace.json"],
                   capsys) == 2

    def test_malformed_ingest_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"traceEvents": [{', encoding="utf-8")
        assert _rc(["analyze", "--ingest", str(path)], capsys) == 2


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(_stdout_of(GOLDEN_ARGS), encoding="utf-8")
        print(f"wrote {GOLDEN}")
    else:
        print(__doc__)
