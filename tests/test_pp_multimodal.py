"""Tests for multimodal encoder sharding and layer grouping (Section 3.2)."""

import pytest

from repro.hardware.cluster import grand_teton
from repro.model.config import (
    LLAMA3_MULTIMODAL_448,
    LLAMA3_MULTIMODAL_672,
)
from repro.pp.multimodal import (
    EncoderSharding,
    LayerGrouping,
    compare_layer_grouping,
    evaluate_encoder_sharding,
)

CLUSTER = grand_teton(64)
MM_448 = LLAMA3_MULTIMODAL_448
MM_672 = LLAMA3_MULTIMODAL_672


def _ratio(mm, option, bs=16, pp=8):
    return evaluate_encoder_sharding(mm, option, bs=bs, pp=pp,
                                     cluster=CLUSTER).encoder_ratio


class TestEncoderSharding:
    def test_replication_beats_serial_options(self):
        """Option 3's whole point: encoder runs bs/pp per rank in
        parallel."""
        serial = _ratio(MM_672, EncoderSharding.ENCODER_AS_PREPROCESS)
        replicated = _ratio(MM_672, EncoderSharding.ENCODER_REPLICATED)
        assert replicated < serial

    def test_paper_magnitudes_672px(self):
        """Section 3.2.1: at 672 px the serial encoder hits ~33% of step
        latency; replication brings it to ~8%."""
        serial = _ratio(MM_672, EncoderSharding.ENCODER_AS_PREPROCESS)
        replicated = _ratio(MM_672, EncoderSharding.ENCODER_REPLICATED)
        assert 0.20 < serial < 0.45
        assert 0.03 < replicated < 0.12

    def test_resolution_change_worsens_serial_options(self):
        """The 448 -> 672 px change is what broke Option 2."""
        assert _ratio(MM_672, EncoderSharding.ENCODER_AS_PREPROCESS) > \
            _ratio(MM_448, EncoderSharding.ENCODER_AS_PREPROCESS)

    def test_option1_no_better_than_option2_on_encoder_time(self):
        o1 = evaluate_encoder_sharding(
            MM_672, EncoderSharding.WHOLE_MODEL_PP, bs=16, pp=8,
            cluster=CLUSTER)
        o2 = evaluate_encoder_sharding(
            MM_672, EncoderSharding.ENCODER_AS_PREPROCESS, bs=16, pp=8,
            cluster=CLUSTER)
        assert o1.encoder_seconds == pytest.approx(o2.encoder_seconds)

    def test_step_decomposition_sums(self):
        r = evaluate_encoder_sharding(
            MM_448, EncoderSharding.ENCODER_REPLICATED, bs=8, pp=4,
            cluster=CLUSTER)
        assert r.step_seconds == pytest.approx(
            r.encoder_seconds + r.text_seconds + r.comm_seconds
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            evaluate_encoder_sharding(MM_448, EncoderSharding.ENCODER_REPLICATED,
                                      bs=0, pp=4, cluster=CLUSTER)


class TestLayerGrouping:
    def test_wrapped_is_balanced_separate_is_not(self):
        wrapped, separate = compare_layer_grouping(MM_448, pp=4, nmb=16)
        assert wrapped.grouping is LayerGrouping.WRAPPED
        assert wrapped.imbalance == pytest.approx(1.0)
        assert separate.imbalance > 1.3

    def test_separate_has_more_stages_smaller_ideal_bubble(self):
        wrapped, separate = compare_layer_grouping(MM_448, pp=4, nmb=16)
        assert separate.num_stages == 2 * wrapped.num_stages
        assert separate.ideal_bubble < wrapped.ideal_bubble

    def test_wrapped_wins_effective_cost(self):
        """The paper's conclusion: balance beats stage count — WRAPPED's
        effective step cost is lower despite the bigger ideal bubble."""
        wrapped, separate = compare_layer_grouping(MM_448, pp=4, nmb=16)
        assert wrapped.effective_step_cost < separate.effective_step_cost

    def test_stage_costs_cover_all_layers(self):
        wrapped, separate = compare_layer_grouping(MM_448, pp=4, nmb=16)
        assert sum(wrapped.stage_costs) == pytest.approx(
            sum(separate.stage_costs)
        )
