"""Tests for ASCII schedule rendering."""

import pytest

from repro.pp.analysis import ScheduleShape
from repro.pp.layout import build_layout
from repro.pp.render import render_program, render_timeline
from repro.pp.schedule import build_flexible_schedule
from repro.train.cost import StageCost
from repro.train.executor import execute_pipeline

SHAPE = ScheduleShape(pp=3, v=2, nc=3, nmb=6)


def _run(p2p=0.0):
    sched = build_flexible_schedule(SHAPE)
    layout = build_layout(6, 3, 2)
    return execute_pipeline(
        sched, layout,
        lambda s: StageCost(1.0 * s.n_layers, 0, 0),
        lambda s: StageCost(2.0 * s.n_layers, 0, 0),
        p2p_seconds=p2p,
    )


class TestRenderProgram:
    def test_contains_all_ops(self):
        sched = build_flexible_schedule(SHAPE)
        text = render_program(sched, 0)
        assert text.count("F") == SHAPE.tmb
        assert text.count("B") == SHAPE.tmb
        assert "@s0" in text and "@s3" in text


class TestRenderTimeline:
    def test_one_row_per_rank(self):
        text = render_timeline(_run())
        lines = text.splitlines()
        assert len(lines) == SHAPE.pp
        assert lines[0].startswith("rank 0:")

    def test_idle_dots_increase_with_p2p(self):
        """Exposed P2P shows up as more idle cells (Figure 3 in ASCII)."""
        fast = render_timeline(_run(p2p=0.0), width=120)
        slow = render_timeline(_run(p2p=0.8), width=120)
        assert slow.count(".") > fast.count(".")

    def test_forward_digits_and_backward_letters(self):
        text = render_timeline(_run(), width=150)
        assert any(c.isdigit() for c in text)
        assert any(c.isalpha() and c.islower() and c != "r"
                   for c in text.replace("rank", ""))

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_timeline(_run(), width=5)
