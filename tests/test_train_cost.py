"""Focused tests for the per-op cost model."""

import pytest

from repro.hardware.cluster import grand_teton
from repro.model.config import LLAMA3_405B, LLAMA3_405B_SCALED_26L
from repro.parallel.config import JobConfig, ParallelConfig, ZeroStage
from repro.pp.layout import build_layout
from repro.train.cost import CostModel

CLUSTER = grand_teton(2048)
JOB = JobConfig(seq=8192, gbs=512, ngpu=2048)


def _cost(tp=8, cp=1, pp=4, **kw):
    dp = 2048 // (tp * cp * pp)
    par = ParallelConfig(tp=tp, cp=cp, pp=pp, dp=dp, zero=ZeroStage.ZERO_1)
    return CostModel(LLAMA3_405B_SCALED_26L, par, par and JOB, CLUSTER, **kw)


class TestLayerPieces:
    def test_gemm_time_shrinks_with_tp(self):
        assert _cost(tp=8).layer_gemm_seconds() < \
            _cost(tp=4).layer_gemm_seconds()

    def test_cp_shards_tokens(self):
        job_long = JobConfig(seq=131072, gbs=512, ngpu=2048)
        par = ParallelConfig(tp=8, cp=16, pp=4, dp=4, zero=ZeroStage.ZERO_1)
        c = CostModel(LLAMA3_405B, par, job_long, CLUSTER)
        assert c.tokens == 131072 // 16

    def test_tp_comm_exposed_four_collectives(self):
        """TP communicates four times per layer (Section 5.2): the
        per-layer comm equals 2 x (AG + RS) of the activation."""
        c = _cost(tp=8)
        single_pair = c.layer_tp_comm_seconds() / 2
        assert single_pair > 0

    def test_cp_comm_zero_without_cp(self):
        assert _cost(cp=1).layer_cp_comm_seconds() == 0.0

    def test_attention_time_scales_with_mask_fraction(self):
        c = _cost()
        dense = c.layer_attention_seconds(mask_fraction=1.0)
        causal = c.layer_attention_seconds(mask_fraction=0.5)
        assert causal < dense

    def test_elementwise_memory_bound(self):
        """Elementwise time scales with HBM bandwidth, not compute."""
        from repro.hardware.gpu import H100_HBM2E, H100_HBM3
        slow = CostModel(
            LLAMA3_405B_SCALED_26L,
            ParallelConfig(tp=8, cp=1, pp=4, dp=64, zero=ZeroStage.ZERO_1),
            JOB, grand_teton(2048, H100_HBM2E))
        fast = CostModel(
            LLAMA3_405B_SCALED_26L,
            ParallelConfig(tp=8, cp=1, pp=4, dp=64, zero=ZeroStage.ZERO_1),
            JOB, grand_teton(2048, H100_HBM3))
        assert slow.layer_elementwise_seconds() > \
            fast.layer_elementwise_seconds()


class TestStageCosts:
    LAYOUT = build_layout(26, 4, 7)

    def test_head_stage_costs_more_than_empty(self):
        c = _cost()
        head_stage = self.LAYOUT.stage(27)
        empty = self.LAYOUT.stage(0)
        assert head_stage.n_layers == empty.n_layers == 0
        assert c.forward_seconds(head_stage).compute_seconds > \
            c.forward_seconds(empty).compute_seconds

    def test_backward_selective_between_none_and_full(self):
        stage = self.LAYOUT.stage(3)
        none = _cost(recompute=False).backward_seconds(stage)
        sel = _cost(recompute="selective").backward_seconds(stage)
        full = _cost(recompute=True).backward_seconds(stage)
        assert none.compute_seconds < sel.compute_seconds \
            < full.compute_seconds

    def test_stage_cost_total(self):
        c = _cost()
        cost = c.forward_seconds(self.LAYOUT.stage(3))
        assert cost.total_seconds == pytest.approx(
            cost.compute_seconds + cost.tp_comm_seconds
            + cost.cp_comm_seconds)


class TestStepLevelComm:
    def test_p2p_crosses_nodes_when_mp_fills_node(self):
        """With tp*cp >= 8, consecutive PP stages live on different
        nodes: P2P time reflects RoCE, not NVLink."""
        roce = _cost(tp=8).p2p_seconds()
        par = ParallelConfig(tp=2, cp=1, pp=4, dp=256,
                             zero=ZeroStage.ZERO_1)
        nvlink = CostModel(LLAMA3_405B_SCALED_26L, par, JOB,
                           CLUSTER).p2p_seconds()
        # Same payload per TP shard would be 4x bigger at tp=2, yet the
        # NVLink hop is still faster than RoCE.
        assert nvlink < roce * 4

    def test_fsdp_costs_scale_with_params(self):
        c = _cost()
        small = c.fsdp_reduce_scatter_seconds(1e9)
        large = c.fsdp_reduce_scatter_seconds(4e9)
        assert 3.5 < large / small < 4.5

    def test_fsdp_free_without_dp(self):
        par = ParallelConfig(tp=8, cp=1, pp=256, dp=1,
                             zero=ZeroStage.ZERO_1)
        c = CostModel(LLAMA3_405B, par, JobConfig(seq=8192, gbs=512,
                                                  ngpu=2048), CLUSTER)
        assert c.fsdp_allgather_seconds(1e9) == 0.0

    def test_optimizer_memory_bound(self):
        c = _cost()
        assert c.optimizer_seconds(2e9) == pytest.approx(
            2 * c.optimizer_seconds(1e9))
