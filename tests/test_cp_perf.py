"""Tests for the CP performance model (Figures 11-13 shapes)."""

import numpy as np
import pytest

from repro.cp.perf import (
    AttentionShape,
    allgather_cp_perf,
    attention_kernel_time,
    cp_allgather_bandwidth_gbps,
    ring_cp_perf,
    single_gpu_attention_time,
)
from repro.data.documents import make_batch
from repro.hardware.cluster import grand_teton
from repro.hardware.gpu import H100_HBM2E, H100_HBM3

HBM3 = grand_teton(8, H100_HBM3)
HBM2E = grand_teton(8, H100_HBM2E)
SHAPE = AttentionShape()
SEQS = (4096, 8192, 16384, 32768, 65536, 131072)


def _doc_batch(seq, seed=0):
    return make_batch(seq, mean_doc_len=1024.0,
                      rng=np.random.default_rng(seed))


class TestKernelModel:
    def test_quadratic_growth_at_long_seq(self):
        t1 = single_gpu_attention_time(H100_HBM3, 32768)
        t2 = single_gpu_attention_time(H100_HBM3, 65536)
        assert 3.0 < t2 / t1 < 4.5

    def test_doc_mask_cheaper_than_causal(self):
        causal = single_gpu_attention_time(H100_HBM3, 32768)
        doc = single_gpu_attention_time(H100_HBM3, 32768,
                                        batch=_doc_batch(32768))
        assert doc < causal

    def test_empty_kernel_costs_launch(self):
        t = attention_kernel_time(H100_HBM3, 0, 0, SHAPE, kv_len=0)
        assert t == pytest.approx(H100_HBM3.kernel_launch_us * 1e-6)


class TestFigure11:
    """Relative HFU of all-gather CP vs single-GPU flash (HBM2e)."""

    def test_rises_with_sequence_length(self):
        hfus = [allgather_cp_perf(HBM2E, s, 4, SHAPE).relative_hfu
                for s in SEQS]
        assert all(b > a for a, b in zip(hfus, hfus[1:]))

    def test_reaches_95_percent_at_128k(self):
        r = allgather_cp_perf(HBM2E, 131072, 4, SHAPE)
        assert r.relative_hfu > 0.95

    def test_cp2_above_cp4(self):
        for s in SEQS[:3]:
            assert allgather_cp_perf(HBM2E, s, 2, SHAPE).relative_hfu > \
                allgather_cp_perf(HBM2E, s, 4, SHAPE).relative_hfu

    def test_block_causal_below_causal(self):
        """The document-mask imbalance lowers relative HFU (Figure 11's
        second observation)."""
        for s in (16384, 65536):
            causal = allgather_cp_perf(HBM2E, s, 4, SHAPE).relative_hfu
            doc = allgather_cp_perf(HBM2E, s, 4, SHAPE,
                                    batch=_doc_batch(s)).relative_hfu
            assert doc < causal

    def test_cp1_is_exactly_single_gpu(self):
        r = allgather_cp_perf(HBM3, 8192, 1, SHAPE)
        assert r.relative_hfu == pytest.approx(1.0)
        assert r.comm_seconds == 0.0


class TestFigure12:
    def test_bandwidth_grows_with_seq(self):
        bws = [cp_allgather_bandwidth_gbps(HBM3, s, 4) for s in SEQS]
        assert all(b > a for a, b in zip(bws, bws[1:]))

    def test_bandwidth_below_nvlink_peak(self):
        for s in SEQS:
            assert cp_allgather_bandwidth_gbps(HBM3, s, 4) < 450.0

    def test_mask_independent(self):
        """Figure 12's point: the payload (and thus achieved bandwidth)
        does not depend on the mask."""
        assert cp_allgather_bandwidth_gbps(HBM3, 32768, 4) == \
            cp_allgather_bandwidth_gbps(HBM3, 32768, 4)


class TestFigure13:
    """All-gather CP vs ring/TE attention (HBM3, causal)."""

    def test_both_above_95_beyond_64k(self):
        for s in (65536, 131072):
            for cp in (2, 4):
                assert allgather_cp_perf(HBM3, s, cp, SHAPE).relative_hfu \
                    > 0.95
                assert ring_cp_perf(HBM3, s, cp, SHAPE).relative_hfu > 0.94

    def test_cp_beats_ring_at_cp4_short_seq(self):
        """The paper's headline: up to ~13.5% better relative HFU at
        cp=4 and seq 4K-8K."""
        gaps = []
        for s in (4096, 8192):
            cp_hfu = allgather_cp_perf(HBM3, s, 4, SHAPE).relative_hfu
            te_hfu = ring_cp_perf(HBM3, s, 4, SHAPE).relative_hfu
            gaps.append(cp_hfu - te_hfu)
        assert max(gaps) > 0.08
        assert max(gaps) < 0.25

    def test_gap_shrinks_with_sequence_length(self):
        gap_short = (allgather_cp_perf(HBM3, 4096, 4, SHAPE).relative_hfu
                     - ring_cp_perf(HBM3, 4096, 4, SHAPE).relative_hfu)
        gap_long = (allgather_cp_perf(HBM3, 131072, 4, SHAPE).relative_hfu
                    - ring_cp_perf(HBM3, 131072, 4, SHAPE).relative_hfu)
        assert gap_long < gap_short / 3

    def test_ring_merge_cost_positive(self):
        r = ring_cp_perf(HBM3, 8192, 4, SHAPE)
        assert r.merge_seconds > 0


class TestScalingClaim:
    def test_389x_speedup_on_4_gpus(self):
        """Section 1: 3.89x attention latency reduction on 4 GPUs."""
        r = allgather_cp_perf(HBM3, 131072, 4, SHAPE)
        assert 3.7 < r.speedup < 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            allgather_cp_perf(HBM3, 8192, 0, SHAPE)
        with pytest.raises(ValueError):
            ring_cp_perf(HBM3, 8192, 0, SHAPE)
