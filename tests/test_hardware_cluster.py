"""Tests for cluster topology."""

import pytest

from repro.hardware.cluster import GRAND_TETON_16K, ClusterSpec, grand_teton
from repro.hardware.network import NVLINK_H100, ROCE_400G


class TestClusterSpec:
    def test_production_cluster_size(self):
        assert GRAND_TETON_16K.num_gpus == 16384
        assert GRAND_TETON_16K.gpus_per_node == 8
        assert GRAND_TETON_16K.num_nodes == 2048

    def test_node_and_local_rank(self):
        c = grand_teton(64)
        assert c.node_of(0) == 0
        assert c.node_of(7) == 0
        assert c.node_of(8) == 1
        assert c.local_rank(13) == 5

    def test_link_between_same_node_is_nvlink(self):
        c = grand_teton(64)
        assert c.link_between(0, 7) is NVLINK_H100
        assert c.link_between(0, 8) is ROCE_400G

    def test_group_link_slowest_hop_wins(self):
        c = grand_teton(64)
        assert c.group_link([0, 1, 2]) is NVLINK_H100
        assert c.group_link([0, 1, 9]) is ROCE_400G
        assert c.group_link([5]) is NVLINK_H100

    def test_rank_bounds_checked(self):
        c = grand_teton(16)
        with pytest.raises(ValueError):
            c.node_of(16)
        with pytest.raises(ValueError):
            c.node_of(-1)

    def test_oversubscription_reduces_bandwidth(self):
        c = ClusterSpec(num_nodes=4, oversubscription=2.0)
        assert c.inter_node_bandwidth() == pytest.approx(
            ROCE_400G.bandwidth / 2
        )
        with pytest.raises(ValueError):
            ClusterSpec(num_nodes=4, oversubscription=0.5)

    def test_grand_teton_requires_multiple_of_8(self):
        with pytest.raises(ValueError):
            grand_teton(12)

    def test_empty_group_rejected(self):
        c = grand_teton(16)
        with pytest.raises(ValueError):
            c.group_link([])
