"""Tests for pipeline layer placement and the balanced co-design."""

import pytest
from hypothesis import given, strategies as st

from repro.pp.layout import build_layout, build_layout_from_counts


class TestBuildLayout:
    def test_even_division(self):
        layout = build_layout(8, pp=4, v=2)
        assert all(s.n_layers == 1 for s in layout.stages)
        assert layout.n_layers == 8

    def test_balanced_405b_ends_are_empty(self):
        """126 layers over 128 stages: stage 0 keeps only the embedding,
        the last stage only the head (Section 3.1.2 / 7.3.1)."""
        layout = build_layout(126, pp=16, v=8)
        assert layout.stage(0).n_layers == 0
        assert layout.stage(127).n_layers == 0
        assert all(layout.stage(s).n_layers == 1 for s in range(1, 127))

    def test_unbalanced_128_fills_all(self):
        layout = build_layout(128, pp=16, v=8)
        assert all(s.n_layers == 1 for s in layout.stages)

    def test_embedding_and_head_placement(self):
        layout = build_layout(12, pp=3, v=2)
        assert layout.stage(0).has_embedding
        assert layout.stage(5).has_output_head
        assert not layout.stage(1).has_embedding
        assert not layout.stage(1).has_output_head

    def test_layers_contiguous_in_stage_order(self):
        layout = build_layout(10, pp=2, v=2)
        flat = [l for s in layout.stages for l in s.layers]
        assert flat == list(range(10))

    def test_interleaved_rank_mapping(self):
        layout = build_layout(8, pp=4, v=2)
        # Rank 0 hosts global stages 0 and 4 (Figure 2 pattern).
        stages = layout.stages_of_rank(0)
        assert [s.stage for s in stages] == [0, 4]
        assert layout.rank_of_stage(5) == 1
        assert layout.global_stage(1, 1) == 5

    def test_layers_on_rank(self):
        layout = build_layout(126, pp=16, v=8)
        assert layout.layers_on_rank(0) == 7   # one empty stage
        assert layout.layers_on_rank(15) == 7
        assert layout.layers_on_rank(5) == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            build_layout(-1, 2, 2)
        with pytest.raises(ValueError):
            build_layout(4, 0, 2)
        layout = build_layout(8, 4, 2)
        with pytest.raises(ValueError):
            layout.stages_of_rank(4)
        with pytest.raises(ValueError):
            layout.global_stage(0, 2)

    @given(
        n_layers=st.integers(min_value=0, max_value=200),
        pp=st.integers(min_value=1, max_value=16),
        v=st.integers(min_value=1, max_value=8),
    )
    def test_all_layers_placed_exactly_once(self, n_layers, pp, v):
        layout = build_layout(n_layers, pp, v)
        flat = [l for s in layout.stages for l in s.layers]
        assert flat == list(range(n_layers))

    @given(
        n_layers=st.integers(min_value=0, max_value=200),
        pp=st.integers(min_value=1, max_value=16),
        v=st.integers(min_value=1, max_value=8),
    )
    def test_ends_never_heavier_than_middle(self, n_layers, pp, v):
        layout = build_layout(n_layers, pp, v)
        counts = [s.n_layers for s in layout.stages]
        if len(counts) >= 3:
            middle_max = max(counts[1:-1])
            assert counts[0] <= middle_max or middle_max == 0
            assert counts[-1] <= middle_max or middle_max == 0


class TestExplicitCounts:
    def test_round_trip(self):
        layout = build_layout_from_counts([2, 1, 0, 3], pp=2, v=2)
        assert [s.n_layers for s in layout.stages] == [2, 1, 0, 3]
        assert layout.n_layers == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            build_layout_from_counts([1, 2], pp=2, v=2)
        with pytest.raises(ValueError):
            build_layout_from_counts([1, -1, 0, 0], pp=2, v=2)
