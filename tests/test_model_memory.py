"""Tests for per-layer memory accounting."""

import pytest

from repro.model.config import LLAMA3_405B, LLAMA3_8B
from repro.model.flops import layer_params, model_params
from repro.model.memory import (
    BF16_BYTES,
    activation_bytes_per_layer,
    embedding_bytes,
    full_model_bytes,
    layer_grad_bytes,
    layer_param_bytes,
    optimizer_state_bytes_per_param,
    output_head_bytes,
)


class TestActivationAccounting:
    def test_tp_and_cp_shard_linearly(self):
        base = activation_bytes_per_layer(LLAMA3_405B, seq=8192).total
        tp8 = activation_bytes_per_layer(LLAMA3_405B, seq=8192, tp=8).total
        cp4 = activation_bytes_per_layer(LLAMA3_405B, seq=8192, cp=4).total
        assert tp8 == pytest.approx(base / 8)
        assert cp4 == pytest.approx(base / 4)

    def test_scales_with_seq_and_mbs(self):
        a1 = activation_bytes_per_layer(LLAMA3_8B, seq=4096).total
        a2 = activation_bytes_per_layer(LLAMA3_8B, seq=8192).total
        a3 = activation_bytes_per_layer(LLAMA3_8B, seq=4096, mbs=2).total
        assert a2 == pytest.approx(2 * a1)
        assert a3 == pytest.approx(2 * a1)

    def test_ffn_hidden_dominates_for_llama(self):
        b = activation_bytes_per_layer(LLAMA3_405B, seq=8192)
        assert b.ffn_hidden > b.qkv
        assert b.ffn_hidden > 0.4 * b.total

    def test_405b_per_layer_magnitude(self):
        """Sanity: one 8K-seq micro-batch layer on a TP8 rank is a few
        hundred MB — the number that forces pp=16 for 405B."""
        b = activation_bytes_per_layer(LLAMA3_405B, seq=8192, tp=8).total
        assert 0.2e9 < b < 0.6e9

    def test_validation(self):
        with pytest.raises(ValueError):
            activation_bytes_per_layer(LLAMA3_8B, seq=0)
        with pytest.raises(ValueError):
            activation_bytes_per_layer(LLAMA3_8B, seq=8, tp=0)


class TestWeightAccounting:
    def test_layer_param_bytes(self):
        assert layer_param_bytes(LLAMA3_8B) == pytest.approx(
            BF16_BYTES * layer_params(LLAMA3_8B)
        )
        assert layer_param_bytes(LLAMA3_8B, tp=8) == pytest.approx(
            layer_param_bytes(LLAMA3_8B) / 8
        )

    def test_grads_fp32_by_default(self):
        assert layer_grad_bytes(LLAMA3_8B) == pytest.approx(
            2 * layer_param_bytes(LLAMA3_8B)
        )

    def test_optimizer_state_is_12_bytes(self):
        assert optimizer_state_bytes_per_param() == 12

    def test_full_model_405b_bf16_812gb(self):
        # 405B params in BF16 ~ 812 GB: far beyond one 80 GB GPU, the
        # reason model parallelism exists at all.
        assert full_model_bytes(LLAMA3_405B) == pytest.approx(
            2 * model_params(LLAMA3_405B)
        )
        assert full_model_bytes(LLAMA3_405B) > 10 * 80e9

    def test_embedding_and_head_hefty_at_128k_vocab(self):
        # Each is ~4 GB in BF16 before TP sharding (Section 7.1.2).
        assert embedding_bytes(LLAMA3_405B) > 4e9
        assert output_head_bytes(LLAMA3_405B) > 4e9
