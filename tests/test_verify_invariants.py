"""Invariant-checker unit tests, the acceptance scenario (a seeded
warm-up off-by-one is caught and shrunk), and the regression pins for
schedule warm-up vs. executor dependency-time agreement."""

import dataclasses

import pytest

from repro.parallel.config import ZeroStage
from repro.pp.analysis import ScheduleShape, warmup_forward_ops
from repro.pp.layout import build_layout
from repro.pp.schedule import (
    OpKind,
    PipelineSchedule,
    build_flexible_schedule,
)
from repro.train.cost import StageCost
from repro.train.executor import execute_pipeline
from repro.verify.fuzz import run_fuzz
from repro.verify.invariants import (
    check_conservation,
    check_send_before_recv,
    check_stream_overlap,
    check_warmup_depth,
    is_afab_schedule,
    run_invariants,
)

_SHAPES = [
    ScheduleShape(pp=1, v=1, nc=1, nmb=1),
    ScheduleShape(pp=2, v=1, nc=2, nmb=4),
    ScheduleShape(pp=4, v=2, nc=4, nmb=8),    # interleaved 1F1B
    ScheduleShape(pp=4, v=2, nc=2, nmb=8),    # degenerate AFAB
    ScheduleShape(pp=2, v=1, nc=4, nmb=8),    # nc > pp
]


def _execute(shape, p2p=0.25):
    schedule = build_flexible_schedule(shape)
    layout = build_layout(shape.pp * shape.v, shape.pp, shape.v)
    run = execute_pipeline(
        schedule, layout,
        lambda s: StageCost(1.0 * max(s.n_layers, 1), 0.0, 0.0),
        lambda s: StageCost(2.0 * max(s.n_layers, 1), 0.0, 0.0),
        p2p_seconds=p2p,
    )
    return schedule, run


class TestStructureCheckers:
    @pytest.mark.parametrize("shape", _SHAPES, ids=str)
    def test_clean_schedules_pass(self, shape):
        report = run_invariants(build_flexible_schedule(shape))
        assert report.ok, report.to_dict()

    def test_duplicated_op_breaks_conservation(self):
        good = build_flexible_schedule(ScheduleShape(pp=2, v=1, nc=2,
                                                     nmb=4))
        programs = list(good.programs)
        programs[0] = programs[0] + (programs[0][-1],)
        bad = PipelineSchedule(name=good.name, shape=good.shape,
                               programs=tuple(programs))
        violations = check_conservation(bad)
        assert violations
        assert violations[0].context["count"] == 2

    def test_foreign_rank_op_breaks_conservation(self):
        good = build_flexible_schedule(ScheduleShape(pp=2, v=1, nc=2,
                                                     nmb=4))
        programs = list(good.programs)
        # Rank 0 ends up holding (and re-running) one of rank 1's ops.
        programs[0] = programs[0] + (programs[1][0],)
        bad = PipelineSchedule(name=good.name, shape=good.shape,
                               programs=tuple(programs))
        checks = {v.check for v in check_conservation(bad)}
        assert checks == {"conservation"}


class TestWarmupOffByOneCaught:
    """The ISSUE acceptance scenario: an off-by-one seeded into the
    builder's warm-up helper must surface as a warmup-depth violation and
    fuzz down to a minimal reproducer."""

    @pytest.fixture
    def off_by_one(self, monkeypatch):
        import repro.pp.schedule as schedule_mod

        real = warmup_forward_ops

        def deeper(pp, ppr, v, nc, nmb):
            return min(real(pp, ppr, v, nc, nmb) + 1, nmb * v)

        monkeypatch.setattr(schedule_mod, "warmup_forward_ops", deeper)

    def test_checker_flags_it(self, off_by_one):
        bad = build_flexible_schedule(ScheduleShape(pp=4, v=1, nc=4,
                                                    nmb=8))
        violations = check_warmup_depth(bad)
        assert violations
        assert all(v.check == "warmup-depth" for v in violations)
        assert all(v.context["actual"] == v.context["expected"] + 1
                   for v in violations)

    def test_fuzz_catches_and_shrinks_it(self, off_by_one):
        result = run_fuzz(60, seed=0)
        assert not result.ok
        failure = result.failures[0]
        assert not failure.shrunk_report.ok
        # The off-by-one reproduces at the smallest non-capped config
        # (nmb=2 keeps actual=2 distinct from the expected depth of 1;
        # bs=2 == 2*pp puts ZeRO-1 in scope, harmlessly).  The shrink
        # stays within the first failing case's sampled kind.
        assert failure.shrunk.to_dict() == {
            "kind": "1f1b", "pp": 1, "v": 1, "nc": 1, "nmb": 2,
            "zero": "ZERO_1"}
        assert "warmup-depth" in {
            v.check for v in failure.shrunk_report.violations}

    def test_verify_report_goes_red(self, off_by_one):
        from repro.obs.report import verify_report

        report = verify_report(run_fuzz(30, seed=0))
        assert report["ok"] is False
        shrunk = report["fuzz"]["failures"][0]["shrunk_config"]
        assert shrunk == {"kind": "1f1b", "pp": 1, "v": 1, "nc": 1,
                          "nmb": 2, "zero": "ZERO_1"}


class TestTimelineCheckers:
    @pytest.mark.parametrize("shape", _SHAPES, ids=str)
    def test_executed_runs_are_clean(self, shape):
        schedule, run = _execute(shape)
        report = run_invariants(schedule, run, zero=None, bs=None)
        assert report.ok, report.to_dict()
        assert "stream-overlap" in report.checks_run
        assert "send-before-recv" in report.checks_run

    def test_tampered_event_time_caught(self):
        _, run = _execute(ScheduleShape(pp=2, v=1, nc=2, nmb=4))
        events = dict(run.op_events)
        # Pull a non-first-stage forward earlier than its input arrival.
        op = next(op for op in events
                  if op.kind is OpKind.FORWARD and op.ppr == 1)
        ev = events[op]
        events[op] = ev.replace(start=ev.start - 1.0, end=ev.end - 1.0)
        tampered = dataclasses.replace(run, op_events=events)
        violations = check_send_before_recv(tampered)
        assert any("before its input" in v.message for v in violations)

    def test_missing_event_caught(self):
        _, run = _execute(ScheduleShape(pp=2, v=1, nc=2, nmb=4))
        events = dict(run.op_events)
        events.pop(next(iter(events)))
        tampered = dataclasses.replace(run, op_events=events)
        assert check_send_before_recv(tampered)

    def test_run_without_events_reports_not_crashes(self):
        _, run = _execute(ScheduleShape(pp=2, v=1, nc=2, nmb=4))
        bare = dataclasses.replace(run, op_events=None)
        violations = check_send_before_recv(bare)
        assert len(violations) == 1
        assert "no op_events" in violations[0].message

    def test_overlap_checker_sees_simulator_overlap(self):
        _, run = _execute(ScheduleShape(pp=2, v=1, nc=2, nmb=4))
        assert check_stream_overlap(run) == []
        # Force two events onto the same span of one stream.
        sim = run.sim
        ev = sim.events[0]
        sim.record(ev.replace(name="intruder"))
        assert check_stream_overlap(run)


class TestZeroRuleViaSuite:
    def test_suite_applies_rule_when_given_bs(self):
        schedule = build_flexible_schedule(
            ScheduleShape(pp=2, v=1, nc=2, nmb=4))
        good = run_invariants(schedule, zero=ZeroStage.ZERO_1, bs=4)
        assert good.ok and "zero-schedule" in good.checks_run
        bad = run_invariants(schedule, zero=ZeroStage.ZERO_2, bs=4)
        assert not bad.ok


class TestWarmupExecutorAgreement:
    """Regression pins for the latent-inconsistency satellite: the
    fuzzer found no disagreement between ``pp/schedule.py`` warm-up and
    ``train/executor.py`` dependency times, so pin their agreement
    across nc in {1, pp-1, pp, pp+1, nmb} (where nc divides nmb)."""

    @pytest.mark.parametrize("pp,v,nmb", [
        (2, 2, 12),   # nc in {1, 2, 3, 12}
        (4, 2, 60),   # nc in {1, 3, 4, 5, 60}
        (8, 1, 56),   # nc in {1, 7, 8, 56}
    ])
    def test_executed_warmup_matches_formula(self, pp, v, nmb):
        candidates = sorted({1, pp - 1, pp, pp + 1, nmb})
        ncs = [nc for nc in candidates if 1 <= nc <= nmb and nmb % nc == 0]
        assert len(ncs) >= 4, "parameters must keep the nc set rich"
        for nc in ncs:
            shape = ScheduleShape(pp=pp, v=v, nc=nc, nmb=nmb)
            schedule, run = _execute(shape)
            assert run_invariants(schedule, run).ok
            afab = is_afab_schedule(schedule)
            for ppr in range(pp):
                timeline = sorted(
                    ((ev.start, op) for op, ev in run.op_events.items()
                     if op.ppr == ppr),
                    key=lambda pair: pair[0])
                executed_warmup = 0
                for _, op in timeline:
                    if op.kind is OpKind.BACKWARD:
                        break
                    executed_warmup += 1
                expected = (nmb * v if afab
                            else warmup_forward_ops(pp, ppr, v, nc, nmb))
                assert executed_warmup == expected, (
                    f"pp={pp} v={v} nc={nc} nmb={nmb} ppr={ppr}")
