"""Detection-accuracy matrix: inject one straggler everywhere, find it.

For every mesh in a small 4D family and every global rank as victim, a
single compute straggler must be localised to the exact rank with
``attribution == "compute"`` (the Section 6.1 loop, closed).  Alongside
the matrix: regression tests for the two bugs the loop flushed out — the
PP hand-off wrap edge at the last stage, and the even-fleet median in
the attribution check.
"""

import pytest

from repro.debug.trace_analysis import identify_slow_rank
from repro.debug.workload import WorkloadSpec, run_synthetic_workload
from repro.faults import ComputeStraggler, FaultPlan, score_detection
from repro.parallel.config import ParallelConfig
from repro.parallel.mesh import DeviceMesh
from repro.sim.engine import Simulator

#: Small meshes exercising every dimension as the discriminating level.
MATRIX_MESHES = ((4, 2, 1, 1), (2, 2, 2, 1), (2, 1, 2, 2))

#: Keep the matrix fast: 2 steps x 3 layers is enough for every level's
#: collectives to appear at least twice.
SPEC = WorkloadSpec(steps=2, layers=3)


def _mesh(tp, cp, pp, dp):
    return DeviceMesh(ParallelConfig(tp=tp, cp=cp, pp=pp, dp=dp))


class TestDetectionMatrix:
    @pytest.mark.parametrize("shape", MATRIX_MESHES,
                             ids=lambda s: "tp%d-cp%d-pp%d-dp%d" % s)
    @pytest.mark.parametrize("victim", range(8))
    def test_single_straggler_localised_exactly(self, shape, victim):
        mesh = _mesh(*shape)
        assert mesh.world_size == 8  # matrix assumption: victims 0..7
        plan = FaultPlan((ComputeStraggler(rank=victim, extra_seconds=0.5),))
        score, sim = score_detection(mesh, plan, spec=SPEC)
        assert score.exact_hit, (
            f"straggler at rank {victim} on {shape}: "
            f"detected {score.detected_rank}")
        assert score.attribution == "compute"
        assert score.levels_descended >= 1
        assert score.injected_events > 0
        assert score.blame_seconds > 0

    @pytest.mark.parametrize("shape", MATRIX_MESHES,
                             ids=lambda s: "tp%d-cp%d-pp%d-dp%d" % s)
    def test_healthy_fleet_attributes_communication(self, shape):
        mesh = _mesh(*shape)
        sim = run_synthetic_workload(mesh, spec=SPEC)
        rep = identify_slow_rank(sim, mesh)
        assert rep.attribution == "communication"
        assert rep.compute_excess_seconds == pytest.approx(0.0, abs=1e-9)


class TestLastStageWrapRegression:
    """The PP hand-off used to wrap from the last stage back to stage 0,
    smearing a last-stage straggler's lateness onto stage 0's next step
    and mislocalising it."""

    MESH = _mesh(2, 1, 4, 1)  # pp=4: ranks 6, 7 are the last stage

    @pytest.mark.parametrize("victim", [6, 7])
    def test_last_stage_straggler_localised(self, victim):
        plan = FaultPlan((ComputeStraggler(rank=victim, extra_seconds=0.5),))
        score, _ = score_detection(self.MESH, plan, spec=SPEC)
        assert score.exact_hit
        assert score.attribution == "compute"

    def test_no_wrap_edge_in_workload(self):
        """Every PP hand-off goes stage s -> s+1; none wraps to stage 0."""
        sim = run_synthetic_workload(self.MESH, spec=SPEC)
        handoffs = [e for e in sim.events if e.name.startswith("pp:")]
        assert handoffs, "workload lost its PP hand-offs"
        for e in handoffs:
            stages = sorted({self.MESH.coord_of(r).pp for r in e.group})
            assert len(stages) == 2 and stages[1] == stages[0] + 1, (
                f"PP hand-off {e.name!r} spans stages {stages}")


class TestEvenFleetMedianRegression:
    """Attribution used the upper-middle element as the even-fleet
    median; a straggler whose own compute lands in the upper half then
    inflated the baseline and deflated its excess below the threshold."""

    MESH = _mesh(4, 1, 1, 1)

    def _trace(self, compute_seconds):
        sim = Simulator()
        done = {
            rank: sim.run(rank, "compute", seconds, f"gemm:{rank}")
            for rank, seconds in enumerate(compute_seconds)
        }
        sim.run_collective(
            list(done), "tp", 0.1, "tp:ag",
            after={rank: [e] for rank, e in done.items()})
        return sim

    def test_upper_half_straggler_still_compute_bound(self):
        # True median is 1.1 -> excess 0.15 > 5% threshold.  The old
        # upper-middle "median" (1.2) gave excess 0.05 < 0.06 and called
        # this communication-bound.
        rep = identify_slow_rank(self._trace([1.0, 1.0, 1.2, 1.25]),
                                 self.MESH)
        assert rep.slow_rank == 3
        assert rep.attribution == "compute"
        assert rep.compute_excess_seconds == pytest.approx(0.15)

    def test_balanced_fleet_stays_communication(self):
        rep = identify_slow_rank(self._trace([1.0, 1.0, 1.0, 1.01]),
                                 self.MESH)
        assert rep.attribution == "communication"

    def test_exposed_comm_events_feed_the_search(self):
        """A straggler visible only through exposed waits (the executor's
        ``exposed_comm`` kind) must still be localisable."""
        sim = Simulator()
        done = {
            rank: sim.run(rank, "compute", seconds, f"gemm:{rank}")
            for rank, seconds in enumerate([1.0, 1.0, 1.0, 1.6])
        }
        sim.run_collective(
            list(done), "tp", 0.1, "tp:ag", kind="exposed_comm",
            after={rank: [e] for rank, e in done.items()})
        rep = identify_slow_rank(sim, self.MESH)
        assert rep.slow_rank == 3
        assert rep.attribution == "compute"
