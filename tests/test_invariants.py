"""Cross-cutting property tests: invariants that must hold across the
whole library, whatever the configuration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.cluster import grand_teton
from repro.parallel.config import ParallelConfig, ZeroStage
from repro.parallel.mesh import DeviceMesh
from repro.pp.analysis import ScheduleShape
from repro.pp.grad_memory import track_memory
from repro.pp.layout import build_layout
from repro.pp.schedule import build_afab_schedule, build_flexible_schedule
from repro.sim.collectives import all_gather_time, all_reduce_time
from repro.train.cost import StageCost
from repro.train.executor import execute_pipeline

CLUSTER = grand_teton(128)

shapes = st.builds(
    lambda pp, v, rounds, nc: ScheduleShape(pp=pp, v=v, nc=nc,
                                            nmb=nc * rounds),
    pp=st.integers(min_value=1, max_value=5),
    v=st.integers(min_value=1, max_value=3),
    rounds=st.integers(min_value=1, max_value=3),
    nc=st.integers(min_value=1, max_value=6),
)

parallel_configs = st.builds(
    ParallelConfig,
    tp=st.sampled_from([1, 2, 4, 8]),
    cp=st.sampled_from([1, 2, 4]),
    pp=st.sampled_from([1, 2, 4]),
    dp=st.sampled_from([1, 2, 4]),
)


class TestExecutorInvariants:
    @settings(max_examples=40, deadline=None)
    @given(shape=shapes, p2p=st.floats(min_value=0.0, max_value=1.0))
    def test_makespan_bounded(self, shape, p2p):
        """Makespan >= any rank's busy time, and <= fully serial
        execution of everything plus all P2P hops."""
        sched = build_flexible_schedule(shape)
        layout = build_layout(shape.pp * shape.v, shape.pp, shape.v)
        run = execute_pipeline(
            sched, layout,
            lambda s: StageCost(1.0 * s.n_layers, 0, 0),
            lambda s: StageCost(2.0 * s.n_layers, 0, 0),
            p2p_seconds=p2p,
        )
        assert run.makespan >= max(run.per_rank_busy) - 1e-9
        serial = shape.pp * shape.tmb * 3.0 + \
            2 * shape.pp * shape.v * shape.nmb * p2p
        assert run.makespan <= serial + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(shape=shapes)
    def test_p2p_only_hurts(self, shape):
        sched = build_flexible_schedule(shape)
        layout = build_layout(shape.pp * shape.v, shape.pp, shape.v)

        def run(p2p):
            return execute_pipeline(
                sched, layout,
                lambda s: StageCost(1.0 * s.n_layers, 0, 0),
                lambda s: StageCost(2.0 * s.n_layers, 0, 0),
                p2p_seconds=p2p,
            ).makespan

        assert run(0.5) >= run(0.0) - 1e-9


class TestMemoryInvariants:
    @settings(max_examples=30, deadline=None)
    @given(shape=shapes, zero=st.sampled_from(list(ZeroStage)))
    def test_memory_non_negative_and_acts_drain(self, shape, zero):
        sched = build_flexible_schedule(shape)
        tl = track_memory(sched, 0, zero, shard_degree=4)
        assert all(s.grad_bytes >= 0 and s.activation_bytes >= 0
                   for s in tl.samples)
        assert tl.samples[-1].activation_bytes == 0.0

    @settings(max_examples=30, deadline=None)
    @given(shape=shapes)
    def test_zero1_peak_at_least_zero2(self, shape):
        sched = build_flexible_schedule(shape)
        z1 = track_memory(sched, 0, ZeroStage.ZERO_1, shard_degree=8)
        z2 = track_memory(sched, 0, ZeroStage.ZERO_2, shard_degree=8)
        assert z1.peak_grad_bytes >= z2.peak_grad_bytes - 1e-12
        assert z2.reduce_scatter_count >= z1.reduce_scatter_count

    @settings(max_examples=20, deadline=None)
    @given(shape=shapes)
    def test_afab_activation_peak_dominates_1f1b(self, shape):
        afab = build_afab_schedule(shape)
        flex = build_flexible_schedule(shape)
        a = track_memory(afab, 0, ZeroStage.ZERO_1)
        f = track_memory(flex, 0, ZeroStage.ZERO_1)
        assert a.peak_activation_bytes >= f.peak_activation_bytes - 1e-12


class TestCollectiveInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=16),
        mb=st.floats(min_value=1e3, max_value=1e9),
    )
    def test_all_reduce_costs_two_all_gathers(self, n, mb):
        ranks = [i * 8 for i in range(n)]  # inter-node group
        ag = all_gather_time(CLUSTER, ranks, mb)
        ar = all_reduce_time(CLUSTER, ranks, mb)
        assert ar.seconds == pytest.approx(2 * ag.seconds)

    @settings(max_examples=30, deadline=None)
    @given(mb=st.floats(min_value=1e3, max_value=1e9))
    def test_time_monotone_in_bytes(self, mb):
        ranks = [0, 8, 16]
        assert all_gather_time(CLUSTER, ranks, 2 * mb).seconds > \
            all_gather_time(CLUSTER, ranks, mb).seconds

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=8),
        mb=st.floats(min_value=1e6, max_value=1e9),
    )
    def test_congestion_scales_serialisation(self, n, mb):
        ranks = list(range(n))
        base = all_gather_time(CLUSTER, ranks, mb)
        slow = all_gather_time(CLUSTER, ranks, mb, congestion=2.0)
        assert base.seconds < slow.seconds <= 2 * base.seconds + 1e-9


class TestMeshInvariants:
    @settings(max_examples=30, deadline=None)
    @given(par=parallel_configs, data=st.data())
    def test_groups_are_equivalence_classes(self, par, data):
        mesh = DeviceMesh(par)
        rank = data.draw(st.integers(min_value=0,
                                     max_value=par.world_size - 1))
        for dim in ("tp", "cp", "pp", "dp"):
            group = mesh.group_of(rank, dim)
            # Same group from any member's perspective.
            other = data.draw(st.sampled_from(group))
            assert mesh.group_of(other, dim) == group

    @settings(max_examples=30, deadline=None)
    @given(par=parallel_configs)
    def test_dimension_sizes_multiply_to_world(self, par):
        mesh = DeviceMesh(par)
        sizes = [len(mesh.group_of(0, d)) for d in ("tp", "cp", "pp", "dp")]
        assert int(np.prod(sizes)) == par.world_size
