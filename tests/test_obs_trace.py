"""Tests for the Perfetto trace exporter and its schema checker."""

import json

import pytest

from repro.obs.trace import (
    export_chrome_trace,
    merge_timelines,
    remap_ranks,
    trace_event_dicts,
    validate_trace,
    assert_valid_trace,
)
from repro.parallel.config import ParallelConfig
from repro.parallel.mesh import DeviceMesh
from repro.pp.analysis import ScheduleShape, default_nc
from repro.pp.layout import build_layout
from repro.pp.schedule import build_schedule
from repro.sim.engine import Simulator
from repro.train.cost import StageCost
from repro.train.executor import execute_pipeline


def _pipeline_run(pp=4, nmb=8, v=2, p2p=0.05):
    """Small pipeline with real exposed P2P waits (pp=4, nmb=8)."""
    shape = ScheduleShape(pp=pp, v=v, nc=default_nc(pp, nmb), nmb=nmb)
    schedule = build_schedule(shape, "flexible")
    layout = build_layout(pp * v, pp, v)
    cost = StageCost(compute_seconds=1.0, tp_comm_seconds=0.1,
                     cp_comm_seconds=0.0)
    return execute_pipeline(schedule, layout, lambda s: cost, lambda s: cost,
                            p2p_seconds=p2p)


def _events_by_phase(rows, ph):
    return [r for r in rows if r["ph"] == ph]


class TestPipelineRoundTrip:
    def setup_method(self):
        self.run = _pipeline_run()
        self.rows = trace_event_dicts(self.run.sim)

    def test_every_sim_event_exported(self):
        assert len(_events_by_phase(self.rows, "X")) == len(self.run.sim.events)

    def test_exposed_comm_category_preserved(self):
        exposed = [e for e in self.run.sim.events if e.kind == "exposed_comm"]
        assert exposed, "pipeline run should expose some P2P waits"
        exported = [r for r in _events_by_phase(self.rows, "X")
                    if r["cat"] == "exposed_comm"]
        assert len(exported) == len(exposed)
        assert {r["name"] for r in exported} == {e.name for e in exposed}

    def test_timestamps_monotonic_per_thread(self):
        lanes = {}
        for r in _events_by_phase(self.rows, "X"):
            lanes.setdefault((r["pid"], r["tid"]), []).append(r)
        for rows in lanes.values():
            rows.sort(key=lambda r: r["ts"])
            for prev, nxt in zip(rows, rows[1:]):
                assert nxt["ts"] >= prev["ts"] + prev["dur"] - 1e-6

    def test_compute_is_tid_zero(self):
        names = {
            (r["pid"], r["args"]["name"]): r["tid"]
            for r in _events_by_phase(self.rows, "M")
            if r["name"] == "thread_name"
        }
        for (pid, name), tid in names.items():
            if name == "compute":
                assert tid == 0

    def test_validates_clean(self):
        assert validate_trace({"traceEvents": self.rows}) == []

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        written = export_chrome_trace(self.run.sim, str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(written))
        assert validate_trace(loaded) == []
        assert loaded["otherData"]["source"] == "repro.obs.trace"


class TestCollectiveFlows:
    def setup_method(self):
        from repro.debug.workload import WorkloadSpec, run_synthetic_workload

        self.mesh = DeviceMesh(ParallelConfig(tp=2, cp=2))
        self.sim = run_synthetic_workload(
            self.mesh, WorkloadSpec(steps=1, layers=2))
        self.rows = trace_event_dicts(self.sim, mesh=self.mesh)

    def test_each_flow_id_has_one_start(self):
        starts = _events_by_phase(self.rows, "s")
        finishes = _events_by_phase(self.rows, "f")
        assert starts, "collective workload should produce flows"
        start_ids = [r["id"] for r in starts]
        assert len(start_ids) == len(set(start_ids))
        assert {r["id"] for r in finishes} == set(start_ids)

    def test_flow_starts_at_earliest_join(self):
        x_by_key = {}
        for r in _events_by_phase(self.rows, "X"):
            if "group" in r["args"]:
                x_by_key.setdefault(r["name"], []).append(r)
        for s in _events_by_phase(self.rows, "s"):
            members = x_by_key[s["name"]]
            assert s["ts"] == pytest.approx(min(m["ts"] for m in members))

    def test_mesh_process_names(self):
        names = [r["args"]["name"] for r in _events_by_phase(self.rows, "M")
                 if r["name"] == "process_name"]
        assert "rank 0 (dp0 pp0 cp0 tp0)" in names
        assert "rank 3 (dp0 pp0 cp1 tp1)" in names

    def test_validates_clean(self):
        assert validate_trace({"traceEvents": self.rows}) == []


class TestTimelineSurgery:
    def test_merge_offsets_and_prefixes(self):
        a, b = Simulator(), Simulator()
        a.run(0, "compute", 2.0, "fwd")
        b.run(0, "compute", 1.0, "fwd")
        merged = merge_timelines([("p0", a), ("p1", b)])
        assert [e.name for e in merged.events] == ["p0/fwd", "p1/fwd"]
        assert merged.events[1].start == 2.0
        assert merged.makespan() == 3.0

    def test_remap_ranks_rewrites_groups(self):
        sim = Simulator()
        sim.run_collective([0, 1], "compute", 1.0, "ag")
        remapped = remap_ranks(sim, {0: 10, 1: 21})
        assert {e.rank for e in remapped.events} == {10, 21}
        assert remapped.events[0].group == (10, 21)


class TestValidator:
    def test_rejects_non_container(self):
        assert validate_trace(42)

    def test_rejects_missing_ph(self):
        problems = validate_trace([{"name": "x", "pid": 0, "tid": 0}])
        assert any("'ph'" in p for p in problems)

    def test_rejects_negative_duration(self):
        row = {"name": "x", "ph": "X", "pid": 0, "tid": 0,
               "ts": 0.0, "dur": -1.0}
        assert any("dur" in p for p in validate_trace([row]))

    def test_rejects_unknown_metadata(self):
        row = {"name": "mystery_meta", "ph": "M", "pid": 0, "tid": 0,
               "args": {}}
        assert any("metadata" in p for p in validate_trace([row]))

    def test_rejects_flow_without_id(self):
        row = {"name": "x", "ph": "s", "pid": 0, "tid": 0, "ts": 0.0}
        assert any("'id'" in p for p in validate_trace([row]))

    def test_accepts_bare_list_form(self):
        assert validate_trace(
            [{"name": "x", "ph": "X", "pid": 0, "tid": 0,
              "ts": 1.0, "dur": 2.0}]
        ) == []

    def test_assert_valid_trace_raises(self):
        with pytest.raises(ValueError, match="invalid trace_event"):
            assert_valid_trace([{"bogus": True}])
