"""Tests for the Perfetto trace exporter and its schema checker."""

import json

import pytest

from repro.obs.trace import (
    critical_path_annotations,
    export_chrome_trace,
    merge_timelines,
    remap_ranks,
    trace_event_dicts,
    validate_trace,
    assert_valid_trace,
)
from repro.parallel.config import ParallelConfig
from repro.parallel.mesh import DeviceMesh
from repro.pp.analysis import ScheduleShape, default_nc
from repro.pp.layout import build_layout
from repro.pp.schedule import build_schedule
from repro.sim.engine import Simulator
from repro.train.cost import StageCost
from repro.train.executor import execute_pipeline


def _pipeline_run(pp=4, nmb=8, v=2, p2p=0.05):
    """Small pipeline with real exposed P2P waits (pp=4, nmb=8)."""
    shape = ScheduleShape(pp=pp, v=v, nc=default_nc(pp, nmb), nmb=nmb)
    schedule = build_schedule(shape, "flexible")
    layout = build_layout(pp * v, pp, v)
    cost = StageCost(compute_seconds=1.0, tp_comm_seconds=0.1,
                     cp_comm_seconds=0.0)
    return execute_pipeline(schedule, layout, lambda s: cost, lambda s: cost,
                            p2p_seconds=p2p)


def _events_by_phase(rows, ph):
    return [r for r in rows if r["ph"] == ph]


class TestPipelineRoundTrip:
    def setup_method(self):
        self.run = _pipeline_run()
        self.rows = trace_event_dicts(self.run.sim)

    def test_every_sim_event_exported(self):
        assert len(_events_by_phase(self.rows, "X")) == len(self.run.sim.events)

    def test_exposed_comm_category_preserved(self):
        exposed = [e for e in self.run.sim.events if e.kind == "exposed_comm"]
        assert exposed, "pipeline run should expose some P2P waits"
        exported = [r for r in _events_by_phase(self.rows, "X")
                    if r["cat"] == "exposed_comm"]
        assert len(exported) == len(exposed)
        assert {r["name"] for r in exported} == {e.name for e in exposed}

    def test_timestamps_monotonic_per_thread(self):
        lanes = {}
        for r in _events_by_phase(self.rows, "X"):
            lanes.setdefault((r["pid"], r["tid"]), []).append(r)
        for rows in lanes.values():
            rows.sort(key=lambda r: r["ts"])
            for prev, nxt in zip(rows, rows[1:]):
                assert nxt["ts"] >= prev["ts"] + prev["dur"] - 1e-6

    def test_compute_is_tid_zero(self):
        names = {
            (r["pid"], r["args"]["name"]): r["tid"]
            for r in _events_by_phase(self.rows, "M")
            if r["name"] == "thread_name"
        }
        for (pid, name), tid in names.items():
            if name == "compute":
                assert tid == 0

    def test_validates_clean(self):
        assert validate_trace({"traceEvents": self.rows}) == []

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        written = export_chrome_trace(self.run.sim, str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(written))
        assert validate_trace(loaded) == []
        assert loaded["otherData"]["source"] == "repro.obs.trace"


class TestCollectiveFlows:
    def setup_method(self):
        from repro.debug.workload import WorkloadSpec, run_synthetic_workload

        self.mesh = DeviceMesh(ParallelConfig(tp=2, cp=2))
        self.sim = run_synthetic_workload(
            self.mesh, WorkloadSpec(steps=1, layers=2))
        self.rows = trace_event_dicts(self.sim, mesh=self.mesh)

    def test_each_flow_id_has_one_start(self):
        starts = _events_by_phase(self.rows, "s")
        finishes = _events_by_phase(self.rows, "f")
        assert starts, "collective workload should produce flows"
        start_ids = [r["id"] for r in starts]
        assert len(start_ids) == len(set(start_ids))
        assert {r["id"] for r in finishes} == set(start_ids)

    def test_flow_starts_at_earliest_join(self):
        x_by_key = {}
        for r in _events_by_phase(self.rows, "X"):
            if "group" in r["args"]:
                x_by_key.setdefault(r["name"], []).append(r)
        for s in _events_by_phase(self.rows, "s"):
            members = x_by_key[s["name"]]
            assert s["ts"] == pytest.approx(min(m["ts"] for m in members))

    def test_mesh_process_names(self):
        names = [r["args"]["name"] for r in _events_by_phase(self.rows, "M")
                 if r["name"] == "process_name"]
        assert "rank 0 (dp0 pp0 cp0 tp0)" in names
        assert "rank 3 (dp0 pp0 cp1 tp1)" in names

    def test_validates_clean(self):
        assert validate_trace({"traceEvents": self.rows}) == []


class TestTimelineSurgery:
    def test_merge_offsets_and_prefixes(self):
        a, b = Simulator(), Simulator()
        a.run(0, "compute", 2.0, "fwd")
        b.run(0, "compute", 1.0, "fwd")
        merged = merge_timelines([("p0", a), ("p1", b)])
        assert [e.name for e in merged.events] == ["p0/fwd", "p1/fwd"]
        assert merged.events[1].start == 2.0
        assert merged.makespan() == 3.0

    def test_remap_ranks_rewrites_groups(self):
        sim = Simulator()
        sim.run_collective([0, 1], "compute", 1.0, "ag")
        remapped = remap_ranks(sim, {0: 10, 1: 21})
        assert {e.rank for e in remapped.events} == {10, 21}
        assert remapped.events[0].group == (10, 21)


class TestValidator:
    def test_rejects_non_container(self):
        assert validate_trace(42)

    def test_rejects_missing_ph(self):
        problems = validate_trace([{"name": "x", "pid": 0, "tid": 0}])
        assert any("'ph'" in p for p in problems)

    def test_rejects_negative_duration(self):
        row = {"name": "x", "ph": "X", "pid": 0, "tid": 0,
               "ts": 0.0, "dur": -1.0}
        assert any("dur" in p for p in validate_trace([row]))

    def test_rejects_unknown_metadata(self):
        row = {"name": "mystery_meta", "ph": "M", "pid": 0, "tid": 0,
               "args": {}}
        assert any("metadata" in p for p in validate_trace([row]))

    def test_rejects_flow_without_id(self):
        row = {"name": "x", "ph": "s", "pid": 0, "tid": 0, "ts": 0.0}
        assert any("'id'" in p for p in validate_trace([row]))

    def test_accepts_bare_list_form(self):
        assert validate_trace(
            [{"name": "x", "ph": "X", "pid": 0, "tid": 0,
              "ts": 1.0, "dur": 2.0}]
        ) == []

    def test_assert_valid_trace_raises(self):
        with pytest.raises(ValueError, match="invalid trace_event"):
            assert_valid_trace([{"bogus": True}])


class TestInstantValidation:
    """Malformed instant (marker) events must be rejected (PR 6)."""

    def _instant(self, **overrides):
        row = {"name": "mark", "ph": "i", "pid": 0, "tid": 0,
               "ts": 1.0, "s": "t"}
        row.update(overrides)
        return row

    def test_well_formed_instant_accepted(self):
        assert validate_trace([self._instant()]) == []

    def test_instant_with_dur_rejected(self):
        problems = validate_trace([self._instant(dur=5.0)])
        assert any("must not carry 'dur'" in p for p in problems)

    def test_instant_with_bad_scope_rejected(self):
        problems = validate_trace([self._instant(s="galaxy")])
        assert any("scope" in p for p in problems)


class TestFlowChainValidation:
    """Per-(cat, id) flow chains must be s ... t* ... f (PR 6)."""

    def _flow(self, ph, ts, flow_id=7, cat="collective"):
        return {"name": "x", "ph": ph, "pid": 0, "tid": 0, "ts": ts,
                "id": flow_id, "cat": cat}

    def test_well_formed_chain_accepted(self):
        rows = [self._flow("s", 0.0), self._flow("t", 1.0),
                self._flow("f", 2.0)]
        assert validate_trace(rows) == []

    def test_finish_before_start_rejected(self):
        rows = [self._flow("f", 0.0), self._flow("s", 1.0)]
        problems = validate_trace(rows)
        assert any("expected 's'" in p for p in problems)

    def test_duplicate_start_rejected(self):
        rows = [self._flow("s", 0.0), self._flow("s", 1.0),
                self._flow("f", 2.0)]
        problems = validate_trace(rows)
        assert any("'s' events, expected 1" in p for p in problems)

    def test_missing_finish_rejected(self):
        rows = [self._flow("s", 0.0), self._flow("t", 1.0)]
        problems = validate_trace(rows)
        assert any("never finishes" in p for p in problems)

    def test_same_id_different_cat_are_distinct_chains(self):
        rows = [self._flow("s", 0.0, cat="a"), self._flow("f", 1.0, cat="a"),
                self._flow("s", 0.0, cat="b"), self._flow("f", 1.0, cat="b")]
        assert validate_trace(rows) == []


class TestCriticalPathAnnotations:
    """Flow/instant rows from the analyzer must validate cleanly and
    land on the right tracks."""

    def setup_method(self):
        from repro.analysis.critical_path import extract_critical_path
        from repro.hardware.cluster import grand_teton
        from repro.model.config import LLAMA3_8B
        from repro.parallel.config import JobConfig
        from repro.train.step import simulate_step

        par = ParallelConfig(tp=2, cp=1, pp=2, dp=2)
        job = JobConfig(seq=8192, gbs=8, ngpu=8)
        rep = simulate_step(LLAMA3_8B, par, job, grand_teton(8))
        self.sim = rep.run.sim
        self.cp = extract_critical_path(rep.execution.graph,
                                        rep.execution.events,
                                        makespan=rep.step_seconds)
        self.rows = critical_path_annotations(self.sim.events,
                                              self.cp.entries)

    def test_annotated_trace_validates_clean(self):
        obj = export_chrome_trace(self.sim, __import__("io").StringIO(),
                                  extra_events=self.rows)
        assert validate_trace(obj) == []

    def test_one_start_one_finish_one_instant(self):
        phases = [r["ph"] for r in self.rows]
        assert phases.count("s") == 1
        assert phases.count("f") == 1
        assert phases.count("i") == 1

    def test_string_id_cannot_collide_with_collective_flows(self):
        flow_ids = {r["id"] for r in self.rows if r["ph"] in ("s", "t", "f")}
        assert flow_ids == {"critical-path"}

    def test_instant_marks_makespan(self):
        (instant,) = [r for r in self.rows if r["ph"] == "i"]
        assert instant["name"] == "critical-path:makespan"
        assert instant["ts"] == pytest.approx(
            self.cp.makespan_seconds * 1e6)

    def test_rank_map_rewrites_pids(self):
        rows = critical_path_annotations(self.sim.events, self.cp.entries,
                                         rank_map={r: r + 100 for r in
                                                   range(4)})
        assert all(r["pid"] >= 100 for r in rows)


class TestNonContiguousRemap:
    """merge_timelines + remap_ranks round-trips under rank maps with
    holes (PR 6 satellite)."""

    RANK_MAP = {0: 10, 1: 21, 2: 5}

    def _sim(self):
        sim = Simulator()
        sim.run(0, "compute", 1.0, "fwd0")
        sim.run(1, "compute", 2.0, "fwd1")
        sim.run_collective([0, 1, 2], "tp", 0.5, "ag", kind="comm")
        return sim

    def test_remap_then_merge_preserves_makespan(self):
        sim = self._sim()
        remapped = remap_ranks(sim, self.RANK_MAP)
        assert remapped.makespan() == sim.makespan()
        assert {e.rank for e in remapped.events} == {10, 21, 5}
        merged = merge_timelines([("a", sim), ("b", remapped)])
        assert merged.makespan() == 2 * sim.makespan()

    def test_groups_rewritten_through_holes(self):
        remapped = remap_ranks(self._sim(), self.RANK_MAP)
        coll = [e for e in remapped.events if e.group]
        assert coll and all(e.group == (10, 21, 5) for e in coll)

    def test_round_trip_inverse_map_restores_ranks(self):
        sim = self._sim()
        inverse = {v: k for k, v in self.RANK_MAP.items()}
        restored = remap_ranks(remap_ranks(sim, self.RANK_MAP), inverse)
        assert [e.rank for e in restored.events] == \
            [e.rank for e in sim.events]
        assert [e.start for e in restored.events] == \
            [e.start for e in sim.events]

    def test_exported_remap_validates_clean(self):
        remapped = remap_ranks(self._sim(), self.RANK_MAP)
        obj = export_chrome_trace(remapped, __import__("io").StringIO())
        assert validate_trace(obj) == []
