"""Tests for the real-numerics Megatron-style TP layer."""

import numpy as np
import pytest

from repro.numerics.precision import ALL_BF16, ALL_FP32, matmul
from repro.numerics.tp_emul import (
    attention_heads_bitwise_partitionable,
    column_parallel_linear,
    row_parallel_linear,
    tp_layer_forward,
    tp_layer_forward_emulated_order,
)
from repro.numerics.transformer import TinyConfig, TinyTransformer

CFG = TinyConfig()
MODEL = TinyTransformer.create(CFG, seed=1)
RNG = np.random.default_rng(4)
X = RNG.standard_normal((16, CFG.dim)).astype(np.float32)


class TestColumnParallel:
    def test_bitwise_equal_to_fused(self):
        """Output-dim splitting performs no reduction: every element is
        computed identically on exactly one rank."""
        w = RNG.standard_normal((CFG.dim, CFG.ffn_hidden)).astype(np.float32)
        for precision in (ALL_FP32, ALL_BF16):
            fused = matmul(X, w, precision)
            split = column_parallel_linear(X, w, 4, precision)
            assert np.array_equal(fused, split)

    def test_divisibility(self):
        w = np.zeros((CFG.dim, 30), dtype=np.float32)
        with pytest.raises(ValueError):
            column_parallel_linear(X, w, 4, ALL_FP32)


class TestRowParallel:
    def test_differs_from_fused_in_bf16(self):
        w = RNG.standard_normal((CFG.dim, CFG.dim)).astype(np.float32)
        fused = matmul(X, w, ALL_BF16)
        split = row_parallel_linear(X, w, 4, ALL_BF16)
        assert not np.array_equal(fused, split)
        np.testing.assert_allclose(split, fused, atol=0.3, rtol=0.1)

    def test_close_in_fp32(self):
        w = RNG.standard_normal((CFG.dim, CFG.dim)).astype(np.float32)
        fused = matmul(X, w, ALL_FP32)
        split = row_parallel_linear(X, w, 4, ALL_FP32)
        np.testing.assert_allclose(split, fused, rtol=1e-4, atol=1e-6)

    def test_divisibility(self):
        w = np.zeros((30, CFG.dim), dtype=np.float32)
        with pytest.raises(ValueError):
            row_parallel_linear(X[:, :30], w, 4, ALL_FP32)


class TestHeadPartitioning:
    def test_attention_bitwise_across_tp(self):
        q = RNG.standard_normal((16, CFG.n_heads, CFG.head_dim))
        k = RNG.standard_normal((16, CFG.n_heads, CFG.head_dim))
        v = RNG.standard_normal((16, CFG.n_heads, CFG.head_dim))
        fused, split = attention_heads_bitwise_partitionable(
            CFG, q, k, v, tp=4, precision=ALL_BF16)
        assert np.array_equal(fused, split)


class TestFullLayer:
    def test_tp_layer_matches_emulated_order_bitwise(self):
        for tp in (1, 2, 4):
            a = tp_layer_forward(CFG, MODEL.params, 0, X, tp, ALL_BF16)
            b = tp_layer_forward_emulated_order(
                CFG, MODEL.params, 0, X, tp, ALL_BF16)
            assert np.array_equal(a, b)

    def test_tp_degrees_differ_bitwise_in_bf16(self):
        """Different TP degrees are different reduction orders — the
        per-degree divergence Section 6.2 treats as numerics, not bugs."""
        a = tp_layer_forward(CFG, MODEL.params, 0, X, 1, ALL_BF16)
        b = tp_layer_forward(CFG, MODEL.params, 0, X, 4, ALL_BF16)
        assert not np.array_equal(a, b)
        np.testing.assert_allclose(a, b, atol=0.2, rtol=0.2)

    def test_tp_layer_close_to_unsharded_fp32(self):
        a = tp_layer_forward(CFG, MODEL.params, 0, X, 1, ALL_FP32)
        b = tp_layer_forward(CFG, MODEL.params, 0, X, 4, ALL_FP32)
        np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-5)

    def test_validation(self):
        with pytest.raises(ValueError):
            tp_layer_forward(CFG, MODEL.params, 0, X, 3, ALL_FP32)
