"""Tests for the metrics registry and its mesh-group aggregation."""

import numpy as np
import pytest

from repro.numerics.precision import ALL_FP32
from repro.numerics.transformer import TinyConfig, TinyTransformer
from repro.numerics.fsdp_emul import FsdpEmulator
from repro.obs.metrics import (
    MetricsRegistry,
    pp_rank_map,
    record_simulator_metrics,
)
from repro.parallel.config import ParallelConfig, ZeroStage
from repro.parallel.mesh import DeviceMesh
from repro.sim.engine import Simulator


class TestFamilies:
    def test_counter_accumulates_per_labelset(self):
        reg = MetricsRegistry()
        c = reg.counter("ops", unit="ops")
        c.inc(1, rank=0)
        c.inc(2, rank=0)
        c.inc(5, rank=1)
        assert c.value(rank=0) == 3
        assert c.value(rank=1) == 5
        assert c.value(rank=9) == 0.0

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_set_and_max(self):
        g = MetricsRegistry().gauge("mem", unit="GiB")
        g.set(3.0, rank=0)
        g.set(1.0, rank=0)
        assert g.value(rank=0) == 1.0
        g.set_max(5.0, rank=0)
        g.set_max(2.0, rank=0)
        assert g.value(rank=0) == 5.0

    def test_gauge_missing_sample_raises(self):
        with pytest.raises(KeyError):
            MetricsRegistry().gauge("g").value(rank=3)

    def test_histogram_summary(self):
        h = MetricsRegistry().histogram("lat", unit="s")
        for v in (1.0, 3.0, 2.0):
            h.observe(v, kind="fwd")
        s = h.summary(kind="fwd")
        assert (s.count, s.min, s.max) == (3, 1.0, 3.0)
        assert s.mean == pytest.approx(2.0)

    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_schema(self):
        reg = MetricsRegistry()
        reg.counter("ops", unit="ops", description="d").inc(2, rank=1)
        reg.histogram("lat").observe(1.0)
        reg.event("decision", dim="cp", index=1)
        snap = reg.snapshot()
        ops = snap["metrics"]["ops"]
        assert ops["kind"] == "counter" and ops["unit"] == "ops"
        assert ops["samples"] == [{"labels": {"rank": "1"}, "value": 2.0}]
        assert snap["metrics"]["lat"]["samples"][0]["count"] == 1
        assert snap["events"] == [{"event": "decision", "dim": "cp",
                                   "index": 1}]


class TestMeshAggregation:
    def _registry(self):
        # 8 ranks: tp=2, cp=2, pp=2; busy = global rank index.
        reg = MetricsRegistry()
        g = reg.gauge("busy", unit="s")
        for rank in range(8):
            g.set(float(rank), rank=rank)
        return reg, DeviceMesh(ParallelConfig(tp=2, cp=2, pp=2))

    def test_sum_by_pp_coord(self):
        reg, mesh = self._registry()
        agg = reg.aggregate_by_coord("busy", mesh, "pp", "sum")
        # pp=0 holds ranks 0..3, pp=1 holds 4..7.
        assert agg == {0: 6.0, 1: 22.0}

    def test_mean_by_tp_coord(self):
        reg, mesh = self._registry()
        agg = reg.aggregate_by_coord("busy", mesh, "tp", "mean")
        assert agg == {0: 3.0, 1: 4.0}

    def test_all_dims(self):
        reg, mesh = self._registry()
        out = reg.mesh_aggregates("busy", mesh)
        assert set(out) == {"tp", "cp", "ep", "pp", "dp"}
        assert out["dp"] == {0: sum(range(8))}

    def test_unknown_dim_and_reduce_rejected(self):
        reg, mesh = self._registry()
        with pytest.raises(ValueError):
            reg.aggregate_by_coord("busy", mesh, "xx")
        with pytest.raises(ValueError):
            reg.aggregate_by_coord("busy", mesh, "pp", "median")

    def test_missing_rank_label_rejected(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1.0, stream="compute")
        mesh = DeviceMesh(ParallelConfig(tp=2))
        with pytest.raises(ValueError):
            reg.aggregate_by_coord("g", mesh, "tp")

    def test_histogram_not_aggregatable(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(1.0, rank=0)
        mesh = DeviceMesh(ParallelConfig(tp=1))
        with pytest.raises(TypeError):
            reg.aggregate_by_coord("h", mesh, "tp")


class TestRecordSimulator:
    def test_busy_idle_exposed_and_bubble(self):
        sim = Simulator()
        sim.run(0, "compute", 4.0, "work")
        sim.run(1, "compute", 2.0, "work")
        sim.run(1, "p2p", 1.5, "wait", kind="exposed_comm")
        reg = record_simulator_metrics(sim)
        assert reg.gauge("sim.busy_seconds").value(rank=0) == 4.0
        assert reg.gauge("sim.idle_seconds").value(rank=1) == 2.0
        assert reg.gauge("sim.exposed_comm_seconds").value(rank=1) == 1.5
        assert reg.gauge("sim.bubble_ratio").value(rank=1) == pytest.approx(1.0)

    def test_rank_map_relabels(self):
        sim = Simulator()
        sim.run(0, "compute", 1.0, "work")
        reg = record_simulator_metrics(sim, rank_map={0: 64})
        assert reg.gauge("sim.busy_seconds").value(rank=64) == 1.0

    def test_collectives_counted_as_comm_not_busy(self):
        sim = Simulator()
        sim.run_collective([0, 1], "compute", 1.0, "tp:ag")
        reg = record_simulator_metrics(sim)
        assert reg.gauge("sim.comm_seconds").value(rank=0) == 1.0
        assert reg.gauge("sim.busy_seconds").value(rank=0) == 0.0


class TestInstrumentedPaths:
    def test_step_reports_group_aggregates(self):
        """Acceptance: per-(dp,pp,cp,tp)-group busy/idle/exposed-comm and
        bubble-ratio aggregates from one simulated step."""
        from repro.hardware.cluster import grand_teton
        from repro.model.config import LLAMA3_8B
        from repro.parallel.config import JobConfig
        from repro.train.step import simulate_step

        par = ParallelConfig(tp=2, cp=1, pp=4, dp=2, zero=ZeroStage.ZERO_2)
        job = JobConfig(seq=8192, gbs=8, ngpu=16)
        reg = MetricsRegistry()
        rep = simulate_step(LLAMA3_8B, par, job, grand_teton(16),
                            metrics=reg)
        mesh = DeviceMesh(par)
        for name in ("sim.busy_seconds", "sim.idle_seconds",
                     "sim.exposed_comm_seconds"):
            by_pp = reg.aggregate_by_coord(name, mesh, "pp", "sum")
            assert set(by_pp) == set(range(par.pp))
        bubble = reg.aggregate_by_coord("sim.bubble_ratio", mesh, "dp",
                                        "mean")
        # The gauge spans the whole step timeline (FSDP head/optimizer
        # tail included) and divides by compute-only busy, so it bounds
        # the run-level ratio (compute+exposed-comm over the pipeline
        # region) from above.
        assert bubble[0] >= rep.mean_bubble_ratio
        busy = reg.aggregate_by_coord("sim.busy_seconds", mesh, "pp", "sum")
        for ppr in range(par.pp):
            assert busy[ppr] == pytest.approx(rep.run.per_rank_busy[ppr])

    def test_executor_op_counters(self):
        from repro.hardware.cluster import grand_teton
        from repro.model.config import LLAMA3_8B
        from repro.parallel.config import JobConfig
        from repro.train.step import simulate_step

        par = ParallelConfig(tp=2, cp=1, pp=4, dp=2, zero=ZeroStage.ZERO_2)
        job = JobConfig(seq=8192, gbs=8, ngpu=16)
        reg = MetricsRegistry()
        simulate_step(LLAMA3_8B, par, job, grand_teton(16), metrics=reg)
        ops = reg.counter("pp.ops")
        total = sum(row["value"] for row in ops.sample_rows())
        # Each of pp*v stages runs nmb forwards + nmb backwards.
        nmb = job.micro_batches(par)
        v = -(-LLAMA3_8B.n_layers // par.pp)
        assert total == par.pp * v * nmb * 2
        assert "pp.exposed_p2p_seconds" in reg

    def test_cp_allgather_reports(self):
        from repro.cp.allgather import allgather_cp_attention

        rng = np.random.default_rng(0)
        seq, heads, kv_heads, hd = 16, 4, 2, 8
        q = rng.standard_normal((seq, heads, hd))
        k = rng.standard_normal((seq, kv_heads, hd))
        v = rng.standard_normal((seq, kv_heads, hd))
        reg = MetricsRegistry()
        out = allgather_cp_attention(q, k, v, cp=4, metrics=reg)
        count = reg.counter("cp.allgather.count")
        assert all(count.value(rank=r) == 1 for r in range(4))
        for s in out.per_rank:
            assert reg.counter("cp.allgather.bytes").value(
                rank=s.rank) == pytest.approx(s.allgather_bytes)

    def test_fsdp_emulator_reports(self):
        cfg = TinyConfig()
        rng = np.random.default_rng(3)
        tokens = rng.integers(0, cfg.vocab, (4, 8))
        targets = rng.integers(0, cfg.vocab, (4, 8))
        reg = MetricsRegistry()
        trainer = FsdpEmulator(
            model=TinyTransformer.create(cfg, seed=1), dp=2,
            zero=ZeroStage.ZERO_3, precision=ALL_FP32, metrics=reg,
        )
        trainer.train_step(tokens, targets)
        assert reg.counter("fsdp.param_allgathers").value(zero="zero_3") == 2
        assert reg.counter("fsdp.grad_reduce_scatters").value(
            zero="zero_3") == 1
        resident = reg.gauge("fsdp.resident_bytes")
        expected = trainer.resident_bytes_per_rank()
        for component in ("params", "grads", "optimizer", "total"):
            assert resident.value(zero="zero_3", component=component) == \
                expected[component]

    def test_slow_rank_emits_structured_events(self):
        from repro.debug.trace_analysis import identify_slow_rank
        from repro.debug.workload import run_synthetic_workload

        mesh = DeviceMesh(ParallelConfig(tp=4, cp=2))
        sim = run_synthetic_workload(mesh, slowdown={6: 0.5})
        reg = MetricsRegistry()
        report = identify_slow_rank(sim, mesh, metrics=reg)
        assert report.slow_rank == 6
        kinds = [e["event"] for e in reg.events]
        assert kinds[-1] == "slow_rank.located"
        assert "slow_rank.decision" in kinds
        located = reg.events[-1]
        assert located["rank"] == 6
        decision_dims = [e["dim"] for e in reg.events
                         if e["event"] == "slow_rank.decision"]
        assert decision_dims == [d.dim for d in report.decisions]


class TestPpRankMap:
    def test_maps_onto_pp_axis(self):
        par = ParallelConfig(tp=2, cp=1, pp=4, dp=2)
        mesh = DeviceMesh(par)
        mapping = pp_rank_map(par)
        assert set(mapping) == set(range(4))
        for ppr, rank in mapping.items():
            assert mesh.coord_of(rank).pp == ppr
            assert mesh.coord_of(rank).tp == 0
