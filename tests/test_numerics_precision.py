"""Tests for BF16 emulation and precision configs."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.numerics.precision import (
    ALL_BF16,
    ALL_FP32,
    PRODUCTION,
    accumulate,
    cast,
    is_bf16_representable,
    matmul,
    to_bf16,
)


class TestToBf16:
    def test_representable_values_unchanged(self):
        vals = np.array([0.0, 1.0, -2.0, 0.5, 256.0], dtype=np.float32)
        np.testing.assert_array_equal(to_bf16(vals), vals)

    def test_low_mantissa_bits_cleared(self):
        x = to_bf16(np.array([1.000001, 3.14159, -7.77], dtype=np.float32))
        assert np.all(is_bf16_representable(x))

    def test_round_to_nearest_even(self):
        # 1 + 2^-8 is exactly halfway between two BF16 values (1 and
        # 1 + 2^-7); ties round to even mantissa -> 1.0.
        halfway = np.float32(1.0 + 2.0**-8)
        assert to_bf16(halfway) == np.float32(1.0)
        # Just above halfway rounds up.
        assert to_bf16(np.float32(1.0 + 2.0**-8 + 2.0**-12)) == \
            np.float32(1.0 + 2.0**-7)

    def test_relative_error_bounded(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(1000).astype(np.float32) * 100
        rel = np.abs(to_bf16(x) - x) / np.abs(x)
        assert rel.max() <= 2.0**-8  # half ULP of an 8-bit mantissa

    def test_nan_preserved(self):
        assert np.isnan(to_bf16(np.array([np.nan]))).all()

    def test_idempotent(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(100).astype(np.float32)
        once = to_bf16(x)
        np.testing.assert_array_equal(to_bf16(once), once)

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_monotone(self, x):
        y = np.nextafter(np.float32(x), np.float32(np.inf))
        assert to_bf16(np.float32(x)) <= to_bf16(y)


class TestMatmulAndAccumulate:
    def test_bf16_matmul_rounds_output(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((8, 8)).astype(np.float32)
        b = rng.standard_normal((8, 8)).astype(np.float32)
        out = matmul(a, b, ALL_BF16)
        assert np.all(is_bf16_representable(out))

    def test_fp32_matmul_exact(self):
        a = np.eye(4, dtype=np.float32)
        b = np.full((4, 4), 1.2345678, dtype=np.float32)
        np.testing.assert_array_equal(matmul(a, b, ALL_FP32), b)

    def test_bf16_accumulation_swallows_small_updates(self):
        """The drift mechanism Section 6.2's FP32 accumulation removes:
        a BF16 running total absorbs updates below its ULP."""
        total = np.array([256.0], dtype=np.float32)
        update = np.array([0.5], dtype=np.float32)  # < ULP of 256 in BF16
        out = accumulate(total, update, "bf16")
        assert out[0] == 256.0
        out32 = accumulate(total, update, "fp32")
        assert out32[0] == 256.5

    def test_fp32_accumulation_order_insensitive_here(self):
        a = np.array([1e8], dtype=np.float32)
        b = np.array([1.0], dtype=np.float32)
        left = accumulate(accumulate(a, b, "fp32"), b, "fp32")
        right = accumulate(a, accumulate(b, b, "fp32"), "fp32")
        assert left == right

    def test_cast_validation(self):
        with pytest.raises(ValueError):
            cast(np.zeros(3), "fp16")

    def test_production_config(self):
        assert PRODUCTION.compute == "bf16"
        assert PRODUCTION.grad_accum == "fp32"
        assert PRODUCTION.grad_reduce == "fp32"
