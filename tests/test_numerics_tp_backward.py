"""Tests for the TP layer backward: weight-grad shards bitwise, input
grads to tolerance, and training equivalence."""

import numpy as np
import pytest

from repro.numerics.precision import ALL_BF16, ALL_FP32
from repro.numerics.tp_backward import (
    tp_layer_backward,
    tp_layer_forward_with_cache,
)
from repro.numerics.tp_emul import tp_layer_forward
from repro.numerics.transformer import (
    TinyConfig,
    TinyTransformer,
    layer_backward,
    layer_forward,
)

CFG = TinyConfig()
MODEL = TinyTransformer.create(CFG, seed=1)
RNG = np.random.default_rng(5)
X = RNG.standard_normal((16, CFG.dim)).astype(np.float32)
DX = RNG.standard_normal((16, CFG.dim)).astype(np.float32)


def _mono():
    out, cache = layer_forward(CFG, MODEL.params, 0, X, ALL_FP32)
    dx, grads = layer_backward(CFG, MODEL.params, 0, DX, cache, ALL_FP32)
    return out, dx, grads


def _tp(tp, precision=ALL_FP32):
    out, cache = tp_layer_forward_with_cache(
        CFG, MODEL.params, 0, X, tp, precision)
    dx, grads = tp_layer_backward(
        CFG, MODEL.params, 0, DX, cache, tp, precision)
    return out, dx, grads


class TestForwardConsistency:
    def test_cached_forward_matches_plain_tp_forward_bitwise(self):
        for tp in (1, 2, 4):
            plain = tp_layer_forward(CFG, MODEL.params, 0, X, tp, ALL_BF16)
            cached, _ = tp_layer_forward_with_cache(
                CFG, MODEL.params, 0, X, tp, ALL_BF16)
            assert np.array_equal(plain, cached)

    def test_tp1_forward_matches_monolithic_bitwise(self):
        mono_out, _, _ = _mono()
        tp_out, _, _ = _tp(1)
        assert np.array_equal(mono_out, tp_out)

    def test_tp4_forward_close_not_bitwise(self):
        """Row-parallel partial sums reassociate even in fp32, so tp > 1
        forwards (and everything downstream) match only to rounding."""
        mono_out, _, _ = _mono()
        tp_out, _, _ = _tp(4)
        assert not np.array_equal(mono_out, tp_out)
        np.testing.assert_allclose(tp_out, mono_out, rtol=1e-5, atol=1e-6)


class TestWeightGradShards:
    @pytest.mark.parametrize("name", ["wq", "wk", "wv", "wo", "wg", "wu",
                                      "wd"])
    def test_weight_grads_match_monolithic(self, name):
        """Weight-gradient shards are reduction-free, but their *inputs*
        (activations downstream of row-parallel sums) already differ by
        rounding from the monolithic run, so the contract is tolerance at
        tp > 1 — and bitwise at tp = 1, where no reassociation exists."""
        _, _, mono = _mono()
        _, _, tp4 = _tp(4)
        np.testing.assert_allclose(tp4[f"l0.{name}"], mono[f"l0.{name}"],
                                   rtol=1e-3, atol=1e-5)
        _, _, tp1 = _tp(1)
        np.testing.assert_allclose(tp1[f"l0.{name}"], mono[f"l0.{name}"],
                                   rtol=1e-6, atol=1e-8)

    def test_norm_grads_close(self):
        _, _, mono = _mono()
        _, _, tp = _tp(4)
        np.testing.assert_allclose(tp["l0.norm1"], mono["l0.norm1"],
                                   rtol=1e-4, atol=1e-6)


class TestInputGrads:
    def test_dx_close_but_not_bitwise_at_tp4(self):
        """dx goes through column-parallel all-reduces: a different sum
        association than the monolithic backward."""
        _, mono_dx, _ = _mono()
        _, tp_dx, _ = _tp(4)
        np.testing.assert_allclose(tp_dx, mono_dx, rtol=1e-4, atol=1e-6)

    def test_tp1_dx_bitwise(self):
        _, mono_dx, _ = _mono()
        _, tp_dx, _ = _tp(1)
        np.testing.assert_allclose(tp_dx, mono_dx, rtol=1e-6, atol=1e-8)

    def test_deterministic(self):
        a = _tp(4, ALL_BF16)
        b = _tp(4, ALL_BF16)
        assert np.array_equal(a[1], b[1])
        for k in a[2]:
            assert np.array_equal(a[2][k], b[2][k])


class TestGradcheck:
    def test_tp_backward_against_finite_differences(self):
        """End-to-end check: the TP backward is a correct gradient of the
        TP forward (spot-checked entries, fp32)."""
        tp = 2
        loss_grad = np.ones((16, CFG.dim), dtype=np.float32) / X.size

        def loss():
            out, _ = tp_layer_forward_with_cache(
                CFG, MODEL.params, 0, X, tp, ALL_FP32)
            return float(np.sum(out) / X.size)

        _, cache = tp_layer_forward_with_cache(
            CFG, MODEL.params, 0, X, tp, ALL_FP32)
        _, grads = tp_layer_backward(
            CFG, MODEL.params, 0, loss_grad, cache, tp, ALL_FP32)
        rng = np.random.default_rng(7)
        for name in ("l0.wq", "l0.wd", "l0.wg"):
            p = MODEL.params[name]
            flat = p.reshape(-1)
            idx = int(rng.integers(0, flat.size))
            eps = 2e-3
            orig = flat[idx]
            flat[idx] = orig + eps
            lp = loss()
            flat[idx] = orig - eps
            lm = loss()
            flat[idx] = orig
            fd = (lp - lm) / (2 * eps)
            an = grads[name].reshape(-1)[idx]
            if abs(fd) > 1e-6:
                assert an == pytest.approx(fd, rel=0.05, abs=1e-5), name
