"""Tests for the 4D-parallel dataloader integration (Section 4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.loader import (
    TokenBatchLoader,
    cp_local_view,
    reassemble_from_cp_views,
)


def _loader(**kw):
    defaults = dict(seq=128, bs=4, vocab=1000, mean_doc_len=32.0, seed=1)
    defaults.update(kw)
    return TokenBatchLoader(**defaults)


class TestLoader:
    def test_batch_shapes(self):
        b = _loader().next_batch()
        assert b.tokens.shape == (4, 128)
        assert len(b.batches) == 4
        assert all(s.seq == 128 for s in b.batches)

    def test_deterministic_per_seed(self):
        a = _loader(seed=7).next_batch()
        b = _loader(seed=7).next_batch()
        np.testing.assert_array_equal(a.tokens, b.tokens)

    def test_dp_groups_get_independent_streams(self):
        a = TokenBatchLoader(seq=128, bs=2, dp_rank=0, seed=3).next_batch()
        b = TokenBatchLoader(seq=128, bs=2, dp_rank=1, seed=3).next_batch()
        assert not np.array_equal(a.tokens, b.tokens)

    def test_step_counter_advances(self):
        loader = _loader()
        assert loader.next_batch().step == 0
        assert loader.next_batch().step == 1

    def test_single_document_mode(self):
        b = _loader(mean_doc_len=None).next_batch()
        assert all(s.doc_lens == (128,) for s in b.batches)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBatchLoader(seq=0, bs=4)
        with pytest.raises(ValueError):
            TokenBatchLoader(seq=8, bs=4, vocab=1)


class TestCpLocalView:
    def test_head_tail_selection(self):
        batch = _loader().next_batch()
        view = cp_local_view(batch, cp=4, cp_rank=0)
        # Rank 0 owns chunk 0 (positions 0..15) and chunk 7 (112..127).
        assert view.tokens.shape == (4, 32)
        assert view.position_ids[0, 0] == 0
        assert view.position_ids[0, -1] == 127

    def test_full_mask_information_retained(self):
        """Every CP rank keeps the complete document layout (Section 4:
        'each CP rank requires the full sequence information')."""
        batch = _loader().next_batch()
        view = cp_local_view(batch, cp=4, cp_rank=2)
        assert view.doc_ids_full.shape == (4, 128)
        np.testing.assert_array_equal(
            view.doc_ids_full[1], batch.batches[1].doc_ids)

    def test_views_partition_losslessly(self):
        batch = _loader().next_batch()
        views = [cp_local_view(batch, 4, r) for r in range(4)]
        full = reassemble_from_cp_views(views, batch.seq, 4)
        np.testing.assert_array_equal(full, batch.tokens)

    def test_position_ids_match_token_positions(self):
        batch = _loader().next_batch()
        view = cp_local_view(batch, cp=2, cp_rank=1)
        for col in range(view.tokens.shape[1]):
            pos = view.position_ids[0, col]
            assert view.tokens[0, col] == batch.tokens[0, pos]

    def test_rank_validation(self):
        batch = _loader().next_batch()
        with pytest.raises(ValueError):
            cp_local_view(batch, cp=4, cp_rank=4)
        with pytest.raises(ValueError):
            reassemble_from_cp_views([], 128, 4)

    @settings(max_examples=20, deadline=None)
    @given(cp=st.integers(min_value=1, max_value=8),
           seed=st.integers(min_value=0, max_value=50))
    def test_partition_property(self, cp, seed):
        batch = _loader(seed=seed).next_batch()
        views = [cp_local_view(batch, cp, r) for r in range(cp)]
        full = reassemble_from_cp_views(views, batch.seq, cp)
        np.testing.assert_array_equal(full, batch.tokens)
