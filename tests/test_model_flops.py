"""Tests for FLOP accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.model.config import LLAMA3_405B, LLAMA3_8B, MultimodalConfig, VIT_448, VIT_672
from repro.model.flops import (
    attention_score_flops,
    causal_mask_fraction,
    cross_attention_forward_flops,
    document_mask_fraction,
    layer_backward_flops,
    layer_forward_flops,
    layer_linear_flops,
    model_forward_flops,
    model_params,
    model_step_flops,
    multimodal_layer_step_flops,
    output_head_flops,
    vision_forward_flops,
)


class TestMaskFractions:
    def test_causal_approaches_half(self):
        assert causal_mask_fraction(1) == 1.0
        assert causal_mask_fraction(8192) == pytest.approx(0.5, abs=1e-3)

    def test_document_mask_less_than_causal(self):
        assert document_mask_fraction([1024] * 8) < causal_mask_fraction(8192)

    def test_single_document_equals_causal(self):
        assert document_mask_fraction([100]) == pytest.approx(
            causal_mask_fraction(100)
        )

    @given(st.lists(st.integers(min_value=1, max_value=512), min_size=1,
                    max_size=32))
    def test_document_fraction_bounded(self, lens):
        frac = document_mask_fraction(lens)
        seq = sum(lens)
        assert 0 < frac <= causal_mask_fraction(seq)

    def test_validation(self):
        with pytest.raises(ValueError):
            document_mask_fraction([])
        with pytest.raises(ValueError):
            document_mask_fraction([3, 0])


class TestLayerFlops:
    def test_forward_is_linear_plus_attention(self):
        total = layer_forward_flops(LLAMA3_8B, 4096)
        assert total == pytest.approx(
            layer_linear_flops(LLAMA3_8B, 4096)
            + attention_score_flops(LLAMA3_8B, 4096)
        )

    def test_attention_quadratic_in_seq(self):
        a1 = attention_score_flops(LLAMA3_8B, 1024)
        a2 = attention_score_flops(LLAMA3_8B, 2048)
        assert a2 / a1 == pytest.approx(4.0, rel=0.01)

    def test_backward_twice_forward_linear(self):
        fwd = layer_forward_flops(LLAMA3_8B, 2048)
        bwd = layer_backward_flops(LLAMA3_8B, 2048)
        assert 1.9 < bwd / fwd < 2.1

    def test_frozen_backward_cheaper(self):
        # Section 3.2.2: frozen layers skip weight gradients.
        full = layer_backward_flops(LLAMA3_8B, 2048, frozen=False)
        frozen = layer_backward_flops(LLAMA3_8B, 2048, frozen=True)
        assert frozen < full
        assert frozen == pytest.approx(
            layer_linear_flops(LLAMA3_8B, 2048)
            + 2 * attention_score_flops(LLAMA3_8B, 2048)
        )


class TestModelFlops:
    def test_6nd_rule_of_thumb(self):
        """One step over T tokens costs ~6 * params * T FLOPs plus the
        attention term."""
        tokens = 16 * 2**20
        flops = model_step_flops(LLAMA3_405B, tokens, seq=8192)
        lower = 6 * model_params(LLAMA3_405B) * tokens
        assert lower < flops < 1.25 * lower

    def test_recompute_adds_one_forward(self):
        tokens = 8192 * 4
        base = model_step_flops(LLAMA3_405B, tokens, seq=8192)
        rec = model_step_flops(LLAMA3_405B, tokens, seq=8192, recompute=True)
        fwd = 4 * model_forward_flops(LLAMA3_405B, 8192)
        assert rec - base == pytest.approx(fwd, rel=1e-6)

    def test_output_head_significant_with_128k_vocab(self):
        # Section 7.1.2 rationale: the head rivals a transformer layer.
        head = output_head_flops(LLAMA3_405B, 8192)
        layer = layer_forward_flops(LLAMA3_405B, 8192)
        assert head > 0.5 * layer


class TestMultimodalFlops:
    MM = MultimodalConfig(text=LLAMA3_8B, vision=VIT_448, self_per_cross=4)

    def test_cross_attention_dominates_self(self):
        # Section 3.2.2: image seq >> text seq makes cross layers heavy;
        # the gap widens with resolution.
        per_layer = multimodal_layer_step_flops(self.MM)
        assert per_layer["cross"] > 1.5 * per_layer["self"]
        mm672 = MultimodalConfig(text=LLAMA3_8B, vision=VIT_672,
                                 self_per_cross=4)
        per_layer_672 = multimodal_layer_step_flops(mm672)
        assert per_layer_672["cross"] > per_layer["cross"]
        assert per_layer_672["cross"] > 2 * per_layer_672["self"]

    def test_higher_resolution_costs_more(self):
        assert vision_forward_flops(VIT_672) > 2 * vision_forward_flops(
            VIT_448
        )

    def test_cross_flops_scale_with_image_seq(self):
        mm672 = MultimodalConfig(text=LLAMA3_8B, vision=VIT_672,
                                 self_per_cross=4)
        assert cross_attention_forward_flops(mm672) > \
            cross_attention_forward_flops(self.MM)
