"""Tests for the fleet-level CP imbalance simulation (Figure 14 / §7.3.2)."""

import numpy as np
import pytest

from repro.cp.imbalance import simulate_fleet_imbalance
from repro.hardware.cluster import grand_teton
from repro.hardware.gpu import H100_HBM3

CLUSTER = grand_teton(256, H100_HBM3)


@pytest.fixture(scope="module")
def report():
    return simulate_fleet_imbalance(
        CLUSTER, seq=131072, cp=16, n_dp_groups=8, steps=4,
        mean_doc_len=32768.0, rng=np.random.default_rng(0),
    )


class TestFleetImbalance:
    def test_compute_gap_exists(self, report):
        assert report.slowest_over_fastest_compute > 1.05

    def test_gap_driven_by_attention(self, report):
        """Figure 14b: the compute gap is entirely attention-kernel time,
        so the attention-only ratio exceeds the total-compute ratio."""
        assert report.slowest_over_fastest_attention > \
            report.slowest_over_fastest_compute

    def test_waiting_dominates_exposed_cp(self, report):
        """Section 7.3.2: most exposed CP latency (65.75% in the paper)
        is waiting for the slowest rank, not the collective itself."""
        assert report.waiting_fraction_of_exposed > 0.4

    def test_cp_exposed_fraction_small_but_visible(self, report):
        assert 0.005 < report.cp_exposed_fraction < 0.25

    def test_overlap_headroom_bounded_by_exposed(self, report):
        """Any overlapping CP algorithm still waits for the slowest rank,
        so the headroom is a small slice of elapsed time (2.62% in the
        paper)."""
        assert report.overlap_headroom < report.cp_exposed_fraction
        assert report.overlap_headroom < 0.1

    def test_causal_only_workload_is_balanced(self):
        """With no document structure (one giant doc per batch) all CP
        ranks do identical work: gap collapses, waiting ~ 0."""
        rep = simulate_fleet_imbalance(
            CLUSTER, seq=131072, cp=16, n_dp_groups=4, steps=2,
            mean_doc_len=65536.0, p_full_sequence=1.0,
            rng=np.random.default_rng(1),
        )
        assert rep.slowest_over_fastest_compute == pytest.approx(1.0)
        assert rep.waiting_fraction_of_exposed == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_fleet_imbalance(
                CLUSTER, seq=131072, cp=4, n_dp_groups=2, steps=1,
                mean_doc_len=1024.0, attention_share=0.0,
            )
