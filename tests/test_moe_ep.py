"""Expert parallelism end to end: routing math, the EP all-to-all on the
lowered step timeline, the HotExpert fault through the Section 6.1 loop,
and the planner's EP-vs-TP placement sweep."""

import pytest

from repro.faults import FAULT_PRESETS, FaultPlan, HotExpert, \
    fault_from_dict, parse_fault_spec
from repro.hardware.cluster import grand_teton
from repro.model.config import LLAMA3_8B
from repro.parallel.config import JobConfig, ParallelConfig
from repro.parallel.mesh import DeviceMesh
from repro.train.cost import CostModel
from repro.train.lowering import StepOpKind
from repro.train.moe import (
    balanced_tokens_per_expert,
    dispatch_bytes_per_rank,
    dropped_token_fraction,
    expert_capacity,
    hot_expert_compute_scale,
)
from repro.train.step import simulate_step

MOE_8X = LLAMA3_8B.moe_variant(8)
CLUSTER16 = grand_teton(16)
JOB16 = JobConfig(seq=4096, gbs=8, ngpu=16)
PAR_EP4 = ParallelConfig(tp=2, cp=1, ep=4, pp=2, dp=1)


class TestRoutingMath:
    def test_balanced_share(self):
        assert balanced_tokens_per_expert(1024, 8, 2) == 256.0

    def test_capacity_ceils(self):
        assert expert_capacity(1000, 8, 2, 1.25) == 313

    def test_balanced_router_drops_nothing(self):
        assert dropped_token_fraction(8, 1.25, imbalance=1.0) == 0.0

    def test_hot_router_drops(self):
        d = dropped_token_fraction(8, 1.25, imbalance=3.0)
        assert 0.0 < d < 1.0
        # Hotter router, more drops.
        assert dropped_token_fraction(8, 1.25, 5.0) > d

    def test_drop_fraction_clipped_at_one(self):
        assert dropped_token_fraction(64, 0.01, imbalance=64.0) <= 1.0

    def test_compute_scale_saturates_at_capacity(self):
        assert hot_expert_compute_scale(8, 1.25, 1.0) == 1.0
        assert hot_expert_compute_scale(8, 1.25, 100.0) == 1.25

    def test_dispatch_bytes_dense_model_zero(self):
        assert dispatch_bytes_per_rank(LLAMA3_8B, 4096) == 0.0

    def test_dispatch_bytes_scale_with_topk_and_tp(self):
        full = dispatch_bytes_per_rank(MOE_8X, 4096, tp=1)
        assert full == 2.0 * 4096 * MOE_8X.top_k * MOE_8X.dim
        assert dispatch_bytes_per_rank(MOE_8X, 4096, tp=4) == full / 4

    def test_validations(self):
        with pytest.raises(ValueError):
            dropped_token_fraction(0, 1.25)
        with pytest.raises(ValueError):
            dropped_token_fraction(8, 1.25, imbalance=0.5)
        with pytest.raises(ValueError):
            hot_expert_compute_scale(8, 1.25, 0.9)


class TestMoEModelConfig:
    def test_moe_variant_fields(self):
        assert MOE_8X.is_moe and not LLAMA3_8B.is_moe
        assert MOE_8X.n_experts == 8
        assert MOE_8X.name.endswith("-moe8e")

    def test_cost_model_rejects_ep_on_dense(self):
        with pytest.raises(ValueError):
            CostModel(LLAMA3_8B, PAR_EP4, JOB16, CLUSTER16)

    def test_cost_model_rejects_ep_not_dividing_experts(self):
        par = ParallelConfig(tp=2, cp=1, ep=3, pp=1, dp=1)
        job = JobConfig(seq=4096, gbs=6, ngpu=6)
        with pytest.raises(ValueError):
            CostModel(MOE_8X, par, job, grand_teton(8))


class TestMoEStep:
    """The lowered step graph carries dispatch/combine on the ep stream."""

    def test_ep_stream_events_present(self):
        rep = simulate_step(MOE_8X, PAR_EP4, JOB16, CLUSTER16)
        kinds = {op.kind for op in rep.execution.graph.ops()}
        assert StepOpKind.MOE_DISPATCH in kinds
        assert StepOpKind.MOE_COMBINE in kinds
        ep_events = [e for e in rep.execution.sim.events
                     if e.stream == "ep"]
        assert ep_events
        assert any(e.name.startswith("ep:dispatch:") for e in ep_events)
        assert any(e.name.startswith("ep:combine:") for e in ep_events)

    def test_dense_step_has_no_ep_stream(self):
        par = ParallelConfig(tp=2, cp=1, pp=2, dp=4)
        rep = simulate_step(LLAMA3_8B, par, JOB16, CLUSTER16)
        assert not [e for e in rep.execution.sim.events
                    if e.stream == "ep"]
        assert rep.expert_imbalance == 1.0
        assert rep.dropped_token_fraction == 0.0

    def test_hot_expert_slows_step_and_drops_tokens(self):
        healthy = simulate_step(MOE_8X, PAR_EP4, JOB16, CLUSTER16)
        plan = FaultPlan((HotExpert(rank=1, imbalance=3.0),))
        hot = simulate_step(MOE_8X, PAR_EP4, JOB16, CLUSTER16,
                            fault_plan=plan)
        assert hot.step_seconds > healthy.step_seconds
        assert hot.expert_imbalance == 3.0
        assert hot.dropped_token_fraction == pytest.approx(
            dropped_token_fraction(8, MOE_8X.capacity_factor, 3.0))
        assert healthy.dropped_token_fraction == 0.0

    def test_ep_comm_scales_with_group_spread(self):
        """A cost model whose EP group crosses nodes pays more for the
        all-to-all than one whose group stays on NVLink."""
        narrow = CostModel(MOE_8X, ParallelConfig(tp=1, cp=1, ep=4, pp=2,
                                                  dp=2),
                           JOB16, CLUSTER16)
        wide = CostModel(MOE_8X, ParallelConfig(tp=2, cp=2, ep=4, pp=1,
                                                dp=1),
                         JOB16, CLUSTER16)
        assert narrow.layer_ep_comm_seconds() > 0.0
        assert wide.layer_ep_comm_seconds() > narrow.layer_ep_comm_seconds()


class TestHotExpertFault:
    def test_validation(self):
        with pytest.raises(ValueError):
            HotExpert(rank=-1)
        with pytest.raises(ValueError):
            HotExpert(rank=0, imbalance=1.0)
        with pytest.raises(ValueError):
            HotExpert(rank=0, capacity_factor=1.0)

    def test_work_scale_capacity_clipped(self):
        assert HotExpert(rank=0, imbalance=3.0).work_scale == 1.25
        assert HotExpert(rank=0, imbalance=1.1).work_scale == \
            pytest.approx(1.1)

    def test_spec_parse_round_trip(self):
        f = parse_fault_spec("hotexpert:rank=3,imbalance=2.5,capacity=1.5")
        assert isinstance(f, HotExpert)
        assert (f.rank, f.imbalance, f.capacity_factor) == (3, 2.5, 1.5)
        assert fault_from_dict(f.to_dict()) == f

    def test_preset_registered(self):
        plan = FAULT_PRESETS["hot-expert-default"](8)
        assert isinstance(plan.faults[0], HotExpert)
        assert plan.faults[0].rank == 6

    def test_localised_by_topdown_search(self):
        """Routing skew must be pinned to the hosting rank and attributed
        to compute — the Section 6.1 loop closing over the 5th dim."""
        from repro.debug.trace_analysis import identify_slow_rank
        from repro.debug.workload import run_synthetic_workload

        mesh = DeviceMesh(ParallelConfig(tp=2, cp=1, ep=2, pp=1, dp=2))
        plan = FaultPlan((HotExpert(rank=5, imbalance=4.0,
                                    capacity_factor=2.0),))
        sim = run_synthetic_workload(mesh, faults=plan)
        report = identify_slow_rank(sim, mesh)
        assert report.slow_rank == 5
        assert report.attribution == "compute"
        assert "ep" in [d.dim for d in report.decisions]


class TestPlannerEP:
    """The cost-aware sweep decides EP-vs-TP expert placement."""

    CLUSTER = grand_teton(32)
    JOB = JobConfig(seq=2048, gbs=32, ngpu=32)

    def _winner(self, n_experts):
        from repro.parallel.planner import plan_parallelism

        model = LLAMA3_8B.moe_variant(n_experts)
        return plan_parallelism(model, self.JOB, self.CLUSTER,
                                cost_aware=True)

    def test_dense_sweep_has_no_ep_axis(self):
        from repro.parallel.planner import plan_parallelism

        plan = plan_parallelism(LLAMA3_8B, self.JOB, self.CLUSTER,
                                cost_aware=True)
        assert plan.parallel.ep == 1
        assert all(c.get("ep", 1) == 1 for c in plan.candidates)

    def test_winner_flips_toward_ep_as_experts_grow(self):
        few = self._winner(2).parallel
        many = self._winner(16).parallel
        assert many.ep > few.ep
        # The many-expert winner leans on EP at least as hard as TP
        # shrinks: the per-expert GEMMs are too small to slice thinner.
        assert many.tp <= few.tp

    def test_moe_candidates_cover_ep_axis(self):
        plan = self._winner(8)
        eps = {c.get("ep", 1) for c in plan.candidates}
        assert {1, 2, 4, 8} <= eps

    def test_world_product_includes_ep(self):
        p = self._winner(8).parallel
        assert p.tp * p.cp * p.ep * p.pp * p.dp == self.JOB.ngpu


class TestCLISurface:
    """``repro step --experts N --ep E`` is the MoE entry point."""

    def _json_out(self, capsys):
        import json

        return json.loads(capsys.readouterr().out)

    def test_step_with_experts_and_ep(self, capsys):
        from repro.cli import main

        main(["step", "--model", "8b", "--seq", "4096", "--gbs", "8",
              "--ngpu", "16", "--experts", "8", "--top-k", "2",
              "--tp", "2", "--cp", "1", "--ep", "4", "--pp", "2",
              "--dp", "1", "--json"])
        out = self._json_out(capsys)
        assert out["parallel"]["ep"] == 4
        assert out["step_seconds"] > 0.0
        assert out["expert_imbalance"] == 1.0
        assert out["dropped_token_fraction"] == 0.0

    def test_step_world_size_check_includes_ep(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["step", "--model", "8b", "--seq", "4096", "--gbs", "8",
                  "--ngpu", "16", "--experts", "8",
                  "--tp", "2", "--ep", "4", "--pp", "2", "--dp", "2"])

    def test_step_bad_expert_count_fails_cleanly(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["step", "--model", "8b", "--seq", "4096", "--gbs", "8",
                  "--ngpu", "16", "--experts", "-1",
                  "--tp", "2", "--pp", "2", "--dp", "4"])
