"""Tests for attention backward and the distributed CP backward."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.attention.backward import attention_backward_reference
from repro.attention.masks import causal_mask, document_mask
from repro.attention.reference import attention_reference
from repro.cp.backward import (
    allgather_cp_attention_backward,
    emulated_order_backward,
    rank_partials,
)
from repro.data.documents import DocumentBatch, make_batch


def _setup(seq=32, heads=4, kv_heads=2, hd=8, seed=0):
    rng = np.random.default_rng(seed)
    q = rng.standard_normal((seq, heads, hd))
    k = rng.standard_normal((seq, kv_heads, hd))
    v = rng.standard_normal((seq, kv_heads, hd))
    dout = rng.standard_normal((seq, heads, hd))
    return q, k, v, dout


class TestBackwardReference:
    def _numeric_grad(self, q, k, v, mask, dout, which, idx, eps=1e-6):
        """Central-difference gradient of <out, dout> wrt one element."""
        tensors = {"q": q, "k": k, "v": v}
        t = tensors[which]
        orig = t[idx]
        t[idx] = orig + eps
        plus = np.sum(attention_reference(q, k, v, mask).out * dout)
        t[idx] = orig - eps
        minus = np.sum(attention_reference(q, k, v, mask).out * dout)
        t[idx] = orig
        return (plus - minus) / (2 * eps)

    @pytest.mark.parametrize("which", ["q", "k", "v"])
    def test_gradcheck(self, which):
        q, k, v, dout = _setup(seq=12, heads=2, kv_heads=1, hd=4)
        mask = causal_mask(12)
        dq, dk, dv = attention_backward_reference(q, k, v, mask, dout)
        grads = {"q": dq, "k": dk, "v": dv}
        rng = np.random.default_rng(1)
        arr = {"q": q, "k": k, "v": v}[which]
        for _ in range(5):
            idx = tuple(rng.integers(0, s) for s in arr.shape)
            fd = self._numeric_grad(q, k, v, mask, dout, which, idx)
            an = grads[which][idx]
            assert an == pytest.approx(fd, rel=1e-4, abs=1e-7)

    def test_document_mask_gradcheck(self):
        q, k, v, dout = _setup(seq=12, heads=2, kv_heads=1, hd=4, seed=3)
        batch = DocumentBatch(seq=12, doc_lens=(5, 7))
        mask = document_mask(batch.doc_ids)
        dq, dk, dv = attention_backward_reference(q, k, v, mask, dout)
        fd = self._numeric_grad(q, k, v, mask, dout, "q", (7, 1, 2))
        assert dq[7, 1, 2] == pytest.approx(fd, rel=1e-4, abs=1e-7)

    def test_masked_out_keys_get_zero_grad(self):
        """Keys after the last query row under a strict mask receive no
        gradient."""
        q, k, v, dout = _setup(seq=8, heads=2, kv_heads=2, hd=4)
        mask = causal_mask(8)
        mask[:, 5:] = False  # nobody attends keys 5..7
        _, dk, dv = attention_backward_reference(q, k, v, mask, dout)
        assert np.all(dk[5:] == 0)
        assert np.all(dv[5:] == 0)

    def test_shape_validation(self):
        q, k, v, dout = _setup()
        with pytest.raises(ValueError):
            attention_backward_reference(q, k, v, causal_mask(16), dout)
        with pytest.raises(ValueError):
            attention_backward_reference(q, k, v, causal_mask(32),
                                         dout[:16])


class TestCpBackward:
    def test_dq_bitwise_exact(self):
        """dq needs no cross-rank reduction: bitwise equal to the
        single-device backward."""
        q, k, v, dout = _setup(seq=64)
        ref_dq, _, _ = attention_backward_reference(
            q, k, v, causal_mask(64), dout)
        out = allgather_cp_attention_backward(q, k, v, dout, cp=4)
        assert np.array_equal(out.dq, ref_dq)

    def test_dkdv_match_to_tolerance(self):
        q, k, v, dout = _setup(seq=64)
        _, ref_dk, ref_dv = attention_backward_reference(
            q, k, v, causal_mask(64), dout)
        out = allgather_cp_attention_backward(q, k, v, dout, cp=4)
        np.testing.assert_allclose(out.dk, ref_dk, atol=1e-12)
        np.testing.assert_allclose(out.dv, ref_dv, atol=1e-12)

    def test_document_mask_cp_backward(self):
        q, k, v, dout = _setup(seq=64, seed=5)
        batch = make_batch(64, mean_doc_len=20.0,
                           rng=np.random.default_rng(5))
        mask = document_mask(batch.doc_ids)
        ref_dq, ref_dk, ref_dv = attention_backward_reference(
            q, k, v, mask, dout)
        out = allgather_cp_attention_backward(q, k, v, dout, cp=4,
                                              batch=batch)
        assert np.array_equal(out.dq, ref_dq)
        np.testing.assert_allclose(out.dk, ref_dk, atol=1e-12)

    def test_emulated_order_bitwise(self):
        q, k, v, dout = _setup(seq=48, seed=7)
        out = allgather_cp_attention_backward(q, k, v, dout, cp=3)
        dq, dk, dv = emulated_order_backward(q, k, v, dout, cp=3)
        assert np.array_equal(out.dq, dq)
        assert np.array_equal(out.dk, dk)
        assert np.array_equal(out.dv, dv)

    def test_reduce_scatter_bytes(self):
        q, k, v, dout = _setup(seq=64)
        out = allgather_cp_attention_backward(q, k, v, dout, cp=4)
        kv_bytes = 2 * 64 * 2 * 8 * 2
        assert out.reduce_scatter_bytes_per_rank == pytest.approx(
            kv_bytes * 3 / 4)

    def test_partials_cover_all_rows(self):
        q, k, v, dout = _setup(seq=64)
        partials = rank_partials(q, k, v, dout, cp=4)
        rows = np.concatenate([p[0] for p in partials])
        assert sorted(rows.tolist()) == list(range(64))

    @settings(max_examples=15, deadline=None)
    @given(
        cp=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=30),
    )
    def test_cp_backward_property(self, cp, seed):
        q, k, v, dout = _setup(seq=48, seed=seed)
        batch = make_batch(48, mean_doc_len=18.0,
                           rng=np.random.default_rng(seed))
        mask = document_mask(batch.doc_ids)
        ref_dq, ref_dk, ref_dv = attention_backward_reference(
            q, k, v, mask, dout)
        out = allgather_cp_attention_backward(q, k, v, dout, cp=cp,
                                              batch=batch)
        assert np.array_equal(out.dq, ref_dq)
        np.testing.assert_allclose(out.dk, ref_dk, atol=1e-11)
        np.testing.assert_allclose(out.dv, ref_dv, atol=1e-11)
