"""Failure domains: the seeded taxonomy, correlated fail-stop blast
radii, gray degradation, silent corruption, and the fixed-draw RNG
contract that makes cross-policy comparisons exact.
"""

import numpy as np
import pytest

from repro.hardware.cluster import grand_teton
from repro.model.config import LLAMA3_8B
from repro.parallel.config import JobConfig
from repro.resilience import (
    CORRELATED_DOMAINS,
    FAILURE_KINDS,
    TAXONOMY_PRESETS,
    FailureEvent,
    FailureProcess,
    FailureTaxonomy,
    FixedInterval,
    RunConfig,
    parse_taxonomy,
    simulate_run,
)

MODEL = LLAMA3_8B
JOB = JobConfig(seq=8192, gbs=32, ngpu=32)
CLUSTER = grand_teton(32)


class TestTaxonomy:
    def test_defaults_reproduce_the_legacy_iid_split(self):
        tax = FailureTaxonomy()
        assert tax.node_loss_fraction == 0.4
        assert tax.retry_fraction == 0.3
        for frac in (tax.rack_loss_fraction, tax.pod_loss_fraction,
                     tax.gray_fraction, tax.corruption_fraction):
            assert frac == 0.0
        assert not tax.has_gray

    def test_classification_bands_are_nested_in_order(self):
        tax = FailureTaxonomy(
            node_loss_fraction=0.1, retry_fraction=0.1,
            rack_loss_fraction=0.1, pod_loss_fraction=0.1,
            gray_fraction=0.1, corruption_fraction=0.1)
        expected = ["node_loss", "collective_retry", "rack_loss",
                    "pod_loss", "gray", "gray", "silent_corruption",
                    "transient_straggler"]
        # Band midpoints: 0.05, 0.15, ..., plus the straggler remainder.
        draws = [0.05, 0.15, 0.25, 0.35, 0.41, 0.47, 0.55, 0.8]
        kinds = [tax.classify(u)[0] for u in draws]
        assert kinds == expected

    def test_gray_subtype_splits_without_an_extra_draw(self):
        tax = FailureTaxonomy(node_loss_fraction=0.0, retry_fraction=0.0,
                              gray_fraction=0.5, gray_compute_fraction=0.6)
        # gray band is [0, 0.5): first 60% compute, rest link.
        assert tax.classify(0.1) == ("gray", "compute")
        assert tax.classify(0.29) == ("gray", "compute")
        assert tax.classify(0.31) == ("gray", "link")
        assert tax.classify(0.49) == ("gray", "link")
        assert tax.classify(0.7) == ("transient_straggler", "")

    @pytest.mark.parametrize("bad", [
        dict(node_loss_fraction=-0.1),
        dict(node_loss_fraction=0.7, retry_fraction=0.7),
        dict(retry_success_p=0.0),
        dict(retry_success_p=1.5),
        dict(gray_compute_scale=1.0),
        dict(gray_link_scale=0.5),
        dict(gray_compute_fraction=1.5),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            FailureTaxonomy(**bad)

    def test_presets_are_valid_and_distinct(self):
        assert set(TAXONOMY_PRESETS) == {
            "iid", "rack-correlated", "gray-heavy", "production"}
        assert TAXONOMY_PRESETS["iid"] == FailureTaxonomy()
        assert TAXONOMY_PRESETS["rack-correlated"].rack_loss_fraction > 0
        assert TAXONOMY_PRESETS["gray-heavy"].has_gray
        assert TAXONOMY_PRESETS["production"].corruption_fraction > 0

    def test_parse_taxonomy_preset_and_kv(self):
        assert parse_taxonomy("rack-correlated") \
            == TAXONOMY_PRESETS["rack-correlated"]
        tax = parse_taxonomy("node=0.2,rack=0.1,gray=0.3,retry-p=0.9")
        assert tax.node_loss_fraction == 0.2
        assert tax.rack_loss_fraction == 0.1
        assert tax.gray_fraction == 0.3
        assert tax.retry_success_p == 0.9

    @pytest.mark.parametrize("bad", [
        "", "bogus-preset", "node", "node=0.2,node=0.3,what=1",
        "node=notanumber", "node=0.8,retry=0.8",
    ])
    def test_parse_taxonomy_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_taxonomy(bad)


class TestFailureEventIndices:
    """Satellite: where→index mapping must stay in bounds for worlds
    that are not powers of two."""

    @pytest.mark.parametrize("n", [1, 3, 5, 7, 12, 100, 131071])
    def test_indices_in_bounds_on_awkward_sizes(self, n):
        for where in (0.0, 0.1, 0.5, 0.9999999999, 1.0 - 1e-16):
            ev = FailureEvent(time_seconds=1.0, kind="node_loss",
                              where_fraction=where, failed_attempts=0)
            assert 0 <= ev.node_index(n) < n
            assert 0 <= ev.rank_index(n) < n
            assert 0 <= ev.rack_index(n) < n

    def test_extremes_map_to_first_and_last(self):
        ev_lo = FailureEvent(time_seconds=0.0, kind="gray",
                             where_fraction=0.0, failed_attempts=0)
        ev_hi = FailureEvent(time_seconds=0.0, kind="gray",
                             where_fraction=1.0 - 1e-16, failed_attempts=0)
        assert ev_lo.rank_index(7) == 0
        assert ev_hi.rank_index(7) == 6

    def test_empty_world_rejected(self):
        ev = FailureEvent(time_seconds=0.0, kind="gray",
                          where_fraction=0.5, failed_attempts=0)
        with pytest.raises(ValueError):
            ev.rank_index(0)
        with pytest.raises(ValueError):
            ev.node_index(-1)


class TestFixedDrawContract:
    """The determinism spine: exactly four draws per event, in a fixed
    order, regardless of taxonomy or policy."""

    def test_draw_sequence_pinned_by_manual_replay(self):
        proc = FailureProcess(mtbf_seconds=100.0, seed=7)
        events = [proc.next_failure() for _ in range(20)]
        rng = np.random.default_rng(7)
        t = 0.0
        for ev in events:
            t += rng.exponential(100.0)
            u_kind = rng.random()
            where = rng.random()
            attempts = rng.geometric(0.6)
            assert ev.time_seconds == t
            assert ev.where_fraction == where
            kind, gray_kind = FailureTaxonomy().classify(u_kind)
            assert ev.kind == kind
            assert ev.gray_kind == gray_kind
            if ev.kind == "collective_retry":
                assert ev.failed_attempts == attempts

    def test_identical_arrivals_across_taxonomies_under_one_seed(self):
        seqs = []
        for name in ("iid", "rack-correlated", "gray-heavy", "production"):
            proc = FailureProcess(mtbf_seconds=100.0, seed=3,
                                  taxonomy=TAXONOMY_PRESETS[name])
            seqs.append([(ev.time_seconds, ev.where_fraction)
                         for ev in (proc.next_failure()
                                    for _ in range(50))])
        assert all(s == seqs[0] for s in seqs[1:])

    def test_all_emitted_kinds_are_known(self):
        proc = FailureProcess(mtbf_seconds=10.0, seed=0,
                              taxonomy=TAXONOMY_PRESETS["production"])
        kinds = {proc.next_failure().kind for _ in range(400)}
        assert kinds <= set(FAILURE_KINDS)
        assert {"rack_loss", "gray", "silent_corruption"} <= kinds


class TestClusterTopology:
    def test_node_rack_pod_mapping(self):
        spec = grand_teton(16384)
        assert spec.nodes_per_rack == 8
        assert spec.racks_per_pod == 32
        assert spec.num_racks == 2048 // 8  # 256 racks
        assert spec.num_pods == 8
        assert spec.rack_of(0) == 0
        assert spec.rack_of(7) == 0
        assert spec.rack_of(8) == 1
        assert spec.pod_of(0) == 0
        assert spec.pod_of(2047) == 7

    def test_ragged_tail_rack(self):
        spec = grand_teton(8 * 10)  # 10 nodes: one full rack + 2 nodes
        assert spec.num_racks == 2
        assert spec.nodes_in_rack(0) == 8
        assert spec.nodes_in_rack(1) == 2
        with pytest.raises(ValueError):
            spec.rack_of(10)

    def test_topology_validation(self):
        with pytest.raises(ValueError):
            grand_teton(16).__class__(**{
                **grand_teton(16).__dict__, "nodes_per_rack": 0})


def _run(taxonomy, *, steps=80, seed=5, mtbf=120.0, elastic=True,
         policy=None, mitigation="tolerate"):
    cfg = RunConfig(steps=steps, mtbf_seconds=mtbf,
                    policy=policy or FixedInterval(8), seed=seed,
                    elastic=elastic, taxonomy=taxonomy,
                    mitigation=mitigation)
    return simulate_run(MODEL, JOB, CLUSTER, cfg)


class TestCorrelatedDomainRuns:
    def test_rack_loss_takes_out_a_whole_rack(self):
        tax = FailureTaxonomy(node_loss_fraction=0.0, retry_fraction=0.0,
                              rack_loss_fraction=1.0)
        r = _run(tax, steps=40, seed=1, mtbf=30.0)
        assert r.counters["rack_losses"] >= 1
        assert r.counters["node_losses"] == 0
        # A rack is 8 nodes = 64 GPUs > the 32-GPU fleet: the whole job
        # dies and (elastic) truncates with no feasible plan.
        assert not r.completed

    def test_blast_radius_node_vs_rack_under_one_seed(self):
        """Same seed, same arrival times (fixed draws): reclassifying
        the fail-stop events from node to rack losses turns a survivable
        run into fleet exhaustion — 8 GPUs vs 64 per event."""
        node_tax = FailureTaxonomy(node_loss_fraction=1.0,
                                   retry_fraction=0.0)
        rack_tax = FailureTaxonomy(node_loss_fraction=0.0,
                                   retry_fraction=0.0,
                                   rack_loss_fraction=1.0)
        node_run = _run(node_tax, steps=40, seed=1, mtbf=30.0)
        rack_run = _run(rack_tax, steps=40, seed=1, mtbf=30.0)
        # Identical arrivals, different blast radii.
        assert node_run.failures[0]["time_seconds"] \
            == rack_run.failures[0]["time_seconds"]
        assert node_run.counters["node_losses"] >= 1
        assert node_run.counters["replans"] >= 1
        assert rack_run.counters["rack_losses"] >= 1
        # One rack (8 nodes x 8 GPUs) exceeds the 4-node fleet.
        assert not rack_run.completed
        assert "no feasible plan" in rack_run.truncated_reason

    def test_rack_loss_survivable_on_a_large_fleet(self):
        big_job = JobConfig(seq=8192, gbs=128, ngpu=1024)
        big_cluster = grand_teton(1024)  # 128 nodes = 16 racks
        tax = FailureTaxonomy(node_loss_fraction=0.0, retry_fraction=0.0,
                              rack_loss_fraction=1.0)
        cfg = RunConfig(steps=20, mtbf_seconds=30.0,
                        policy=FixedInterval(4), seed=3, elastic=True,
                        taxonomy=tax)
        r = simulate_run(MODEL, big_job, big_cluster, cfg)
        assert r.completed
        assert r.counters["rack_losses"] >= 1
        assert r.counters["replans"] >= 1
        assert r.segments[-1]["plan_ngpu"] < 1024
        markers = [e.name for e in r.sim.events if e.kind == "marker"]
        assert "failure:rack_loss" in markers

    def test_domains_are_the_correlated_kinds(self):
        assert CORRELATED_DOMAINS == ("node_loss", "rack_loss", "pod_loss")

    def test_gray_fault_taxes_subsequent_steps(self):
        tax = FailureTaxonomy(node_loss_fraction=0.0, retry_fraction=0.0,
                              gray_fraction=1.0)
        r = _run(tax, steps=40, seed=2, mtbf=300.0)
        clean = _run(FailureTaxonomy(node_loss_fraction=0.0,
                                     retry_fraction=0.0), steps=40,
                     seed=2, mtbf=1e9)
        assert r.counters["gray_failures"] >= 1
        assert r.buckets["gray"] > 0
        assert r.elapsed_seconds > clean.elapsed_seconds
        # Tolerated gray degradation never kills capacity.
        assert r.counters["replans"] == 0
        assert [s["plan_ngpu"] for s in r.segments] == [32]

    def test_silent_corruption_forces_rollback_past_detection(self):
        tax = FailureTaxonomy(node_loss_fraction=0.0, retry_fraction=0.0,
                              corruption_fraction=1.0)
        r = _run(tax, steps=60, seed=2, mtbf=40.0)
        assert r.counters["silent_corruptions"] >= 1
        assert r.counters["corruption_rollbacks"] >= 1
        assert r.buckets["rework"] > 0
        markers = [e.name for e in r.sim.events if e.kind == "marker"]
        assert any(m == "failure:silent_corruption" for m in markers)
        # Corruption costs time but the run still finishes.
        assert r.completed

    def test_corruption_rework_exceeds_failstop_rework(self):
        """Rollback past the validation point re-runs work a fail-stop
        crash at the same instant would have kept."""
        corrupt = _run(FailureTaxonomy(node_loss_fraction=0.0,
                                       retry_fraction=0.0,
                                       corruption_fraction=1.0),
                       steps=60, seed=2, mtbf=40.0)
        crash = _run(FailureTaxonomy(node_loss_fraction=1.0,
                                     retry_fraction=0.0),
                     steps=60, seed=2, mtbf=40.0, elastic=False)
        assert corrupt.counters["corruption_rollbacks"] >= 1
        assert crash.counters["node_losses"] >= 1
        assert corrupt.completed and crash.completed
        assert corrupt.buckets["rework"] > crash.buckets["rework"]
