"""Tests for the distributed CP attention implementations: the all-gather
solution must match the reference *bitwise*, the ring baseline to rounding
tolerance — the paper's own correctness bar (Sections 4 and 6.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.attention.masks import causal_mask, document_mask
from repro.attention.reference import attention_reference
from repro.cp.allgather import (
    allgather_cp_attention,
    local_kv_to_allgathered,
)
from repro.cp.ring import ring_cp_attention
from repro.cp.sharding import rank_row_indices
from repro.data.documents import DocumentBatch, make_batch


def _qkv(seq, heads=4, kv_heads=2, hd=8, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal((seq, heads, hd)),
        rng.standard_normal((seq, kv_heads, hd)),
        rng.standard_normal((seq, kv_heads, hd)),
    )


class TestAllGatherCP:
    def test_bitwise_exact_causal(self):
        q, k, v = _qkv(64)
        ref = attention_reference(q, k, v, causal_mask(64))
        out = allgather_cp_attention(q, k, v, cp=4)
        assert np.array_equal(out.out, ref.out)
        assert np.array_equal(out.lse, ref.lse)

    def test_bitwise_exact_document_mask(self):
        """The headline flexibility claim: document masks crossing chunk
        boundaries are handled exactly."""
        q, k, v = _qkv(64)
        batch = DocumentBatch(seq=64, doc_lens=(12, 12, 32, 8))
        ref = attention_reference(q, k, v, document_mask(batch.doc_ids))
        out = allgather_cp_attention(q, k, v, cp=4, batch=batch)
        assert np.array_equal(out.out, ref.out)

    def test_paper_example_cross_boundary_doc(self):
        """Figure 7's example: 16 tokens, documents [3, 3, 8, 2]; the
        first tokens of chunk 1 attend into chunk 0."""
        q, k, v = _qkv(16, heads=2, kv_heads=1, hd=4)
        batch = DocumentBatch(seq=16, doc_lens=(3, 3, 8, 2))
        ref = attention_reference(q, k, v, document_mask(batch.doc_ids))
        out = allgather_cp_attention(q, k, v, cp=2, batch=batch)
        assert np.array_equal(out.out, ref.out)

    def test_stats_accounting(self):
        q, k, v = _qkv(64)
        out = allgather_cp_attention(q, k, v, cp=4)
        areas = [s.score_area for s in out.per_rank]
        assert sum(areas) == 64 * 65 // 2
        assert len(set(areas)) == 1  # causal is balanced
        kv_bytes = 2 * 64 * 2 * 8 * 2
        assert out.per_rank[0].allgather_bytes == pytest.approx(
            kv_bytes * 3 / 4
        )

    def test_cp1_degenerates_to_reference(self):
        q, k, v = _qkv(32)
        out = allgather_cp_attention(q, k, v, cp=1)
        ref = attention_reference(q, k, v, causal_mask(32))
        assert np.array_equal(out.out, ref.out)

    @settings(max_examples=20, deadline=None)
    @given(
        cp=st.integers(min_value=1, max_value=8),
        mean=st.floats(min_value=20.0, max_value=60.0),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_bitwise_property(self, cp, mean, seed):
        seq = 64
        q, k, v = _qkv(seq, seed=seed)
        batch = make_batch(seq, mean_doc_len=mean,
                           rng=np.random.default_rng(seed))
        ref = attention_reference(q, k, v, document_mask(batch.doc_ids))
        out = allgather_cp_attention(q, k, v, cp=cp, batch=batch)
        assert np.array_equal(out.out, ref.out)

    def test_kv_reassembly(self):
        seq, cp = 32, 4
        _, k, _ = _qkv(seq)
        shards = [k[rank_row_indices(seq, cp, r)] for r in range(cp)]
        full = local_kv_to_allgathered(shards, seq, cp)
        assert np.array_equal(full, k)

    def test_kv_reassembly_validation(self):
        seq, cp = 32, 4
        _, k, _ = _qkv(seq)
        with pytest.raises(ValueError):
            local_kv_to_allgathered([k[:8]] * 3, seq, cp)
        with pytest.raises(ValueError):
            local_kv_to_allgathered([k[:7]] * 4, seq, cp)


class TestRingCP:
    def test_matches_reference_to_tolerance_not_bitwise(self):
        """Ring attention merges partials with LSE rescaling: close to the
        reference but (generically) not bitwise — the exact Section 6.2
        distinction between numerics and bugs."""
        q, k, v = _qkv(64)
        ref = attention_reference(q, k, v, causal_mask(64))
        out, _ = ring_cp_attention(q, k, v, cp=4)
        np.testing.assert_allclose(out.out, ref.out, atol=1e-12)
        assert not np.array_equal(out.out, ref.out)

    def test_document_mask_correct(self):
        q, k, v = _qkv(64)
        batch = DocumentBatch(seq=64, doc_lens=(20, 30, 14))
        ref = attention_reference(q, k, v, document_mask(batch.doc_ids))
        out, _ = ring_cp_attention(q, k, v, cp=4, batch=batch)
        np.testing.assert_allclose(out.out, ref.out, atol=1e-12)

    def test_kernel_fragmentation_scales_with_cp(self):
        """The Figure 13 mechanism: O(cp) partial kernels per rank."""
        q, k, v = _qkv(64)
        _, s2 = ring_cp_attention(q, k, v, cp=2)
        _, s4 = ring_cp_attention(q, k, v, cp=4)
        assert s4.kernels_launched > s2.kernels_launched

    def test_causal_skips_empty_tiles(self):
        q, k, v = _qkv(64)
        _, stats = ring_cp_attention(q, k, v, cp=4)
        # Head chunks never attend to later chunks: fewer kernels than
        # the dense cp * 2cp upper bound.
        assert stats.kernels_launched < 4 * 8

    def test_lse_matches_reference(self):
        q, k, v = _qkv(48)
        ref = attention_reference(q, k, v, causal_mask(48))
        out, _ = ring_cp_attention(q, k, v, cp=3)
        np.testing.assert_allclose(out.lse, ref.lse, atol=1e-10)

    @settings(max_examples=15, deadline=None)
    @given(
        cp=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=30),
    )
    def test_ring_equals_allgather_numerically(self, cp, seed):
        seq = 48
        q, k, v = _qkv(seq, seed=seed)
        batch = make_batch(seq, mean_doc_len=18.0,
                           rng=np.random.default_rng(seed))
        ag = allgather_cp_attention(q, k, v, cp=cp, batch=batch)
        ring, _ = ring_cp_attention(q, k, v, cp=cp, batch=batch)
        np.testing.assert_allclose(ring.out, ag.out, atol=1e-11)
