"""CLI observability surface: --json, --trace, the trace subcommand, and
usage-error exit codes (including a real subprocess smoke test)."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main
from repro.obs.trace import assert_valid_trace

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SMALL_STEP = ["--model", "8b", "--ngpu", "16", "--gbs", "8",
              "--tp", "2", "--cp", "1", "--pp", "4", "--dp", "2"]


def _json_out(capsys):
    out = capsys.readouterr().out
    return json.loads(out)


class TestJsonFlags:
    def test_plan_json(self, capsys):
        assert main(["plan", "--model", "8b", "--ngpu", "16",
                     "--gbs", "8", "--json"]) == 0
        rep = _json_out(capsys)
        assert rep["schema"] == "repro.plan/v2"
        assert rep["job"]["ngpu"] == 16

    def test_step_json(self, capsys):
        assert main(["step", *SMALL_STEP, "--json"]) == 0
        rep = _json_out(capsys)
        assert rep["schema"] == "repro.step/v2"
        assert rep["step_seconds"] > 0
        assert set(rep["groups"]["busy_seconds"]) == {"tp", "cp", "ep", "pp",
                                                      "dp"}

    def test_phases_json_with_phase_filter(self, capsys):
        assert main(["phases", "--phase", "long-context", "--json"]) == 0
        rep = _json_out(capsys)
        assert rep["schema"] == "repro.phases/v2"
        assert [p["name"] for p in rep["phases"]] == ["long-context"]

    def test_imbalance_json(self, capsys):
        assert main(["imbalance", "--ngpu", "256", "--dp", "2",
                     "--steps", "1", "--json"]) == 0
        rep = _json_out(capsys)
        assert rep["schema"] == "repro.imbalance/v2"

    def test_run_json(self, capsys):
        assert main(["run", "--steps", "30", "--mtbf", "120", "--seed", "11",
                     "--wait-for-replacement", "--json"]) == 0
        rep = _json_out(capsys)
        assert rep["schema"] == "repro.resilience/v2"
        assert rep["config"]["steps"] == 30
        assert rep["config"]["elastic"] is False
        assert "productive" in rep["buckets_seconds"]
        assert 0 < rep["goodput"]["fraction"] <= 1


class TestTraceFlags:
    def test_step_trace_flag(self, tmp_path, capsys):
        path = tmp_path / "step.json"
        assert main(["step", *SMALL_STEP, "--trace", str(path)]) == 0
        trace = json.loads(path.read_text())
        assert_valid_trace(trace)
        rows = trace["traceEvents"]
        assert any(r.get("cat") == "exposed_comm" for r in rows)
        # Ranks are remapped onto the 16-GPU mesh's pp axis (tp=2 stride).
        pids = {r["pid"] for r in rows if r["ph"] == "X"}
        assert pids == {0, 2, 4, 6}
        assert "trace written" in capsys.readouterr().out

    def test_phases_trace_merges_all_phases(self, tmp_path, capsys):
        path = tmp_path / "phases.json"
        assert main(["phases", "--trace", str(path)]) == 0
        trace = json.loads(path.read_text())
        assert_valid_trace(trace)
        names = {r["name"] for r in trace["traceEvents"] if r["ph"] == "X"}
        prefixes = {n.split("/")[0] for n in names}
        assert prefixes == {"short-context ramp-up", "short-context main",
                            "long-context"}

    def test_run_trace_has_markers_retries_and_checkpoints(self, tmp_path,
                                                           capsys):
        path = tmp_path / "run.json"
        assert main(["run", "--steps", "60", "--mtbf", "120", "--seed", "11",
                     "--wait-for-replacement", "--trace", str(path)]) == 0
        trace = json.loads(path.read_text())
        assert_valid_trace(trace)
        rows = trace["traceEvents"]
        # Failure markers export as instant events; retry ladders and
        # checkpoint writes keep their tags searchable in Perfetto.
        assert any(r["ph"] == "i" for r in rows)
        tags = [t for r in rows for t in r.get("args", {}).get("tags", ())]
        assert "retry" in tags and "checkpoint" in tags and "restart" in tags
        assert "trace written" in capsys.readouterr().out

    def test_trace_subcommand_workload(self, tmp_path, capsys):
        path = tmp_path / "wl.json"
        assert main(["trace", "--cmd", "workload", "--tp", "4", "--cp", "2",
                     "--pp", "1", "--dp", "1", "--slow-rank", "6",
                     "--out", str(path)]) == 0
        assert_valid_trace(json.loads(path.read_text()))
        out = capsys.readouterr().out
        assert "slow rank: 6" in out

    def test_trace_subcommand_step(self, tmp_path, capsys):
        path = tmp_path / "step.json"
        assert main(["trace", "--cmd", "step", *SMALL_STEP,
                     "--out", str(path)]) == 0
        assert_valid_trace(json.loads(path.read_text()))


class TestUsageErrors:
    def _rc(self, argv, capsys):
        with pytest.raises(SystemExit) as err:
            main(argv)
        stderr = capsys.readouterr().err
        return err.value.code, stderr

    def test_unknown_model_exits_2(self, capsys):
        rc, stderr = self._rc(["plan", "--model", "9000b"], capsys)
        assert rc == 2
        assert stderr.startswith("repro: error: unknown model '9000b'")
        assert len(stderr.strip().splitlines()) == 1

    def test_unknown_phase_exits_2(self, capsys):
        rc, stderr = self._rc(["phases", "--phase", "warmup"], capsys)
        assert rc == 2
        assert "unknown phase 'warmup'" in stderr
        assert len(stderr.strip().splitlines()) == 1

    def test_inconsistent_world_exits_2(self, capsys):
        rc, stderr = self._rc(
            ["step", "--ngpu", "16", "--tp", "8", "--pp", "16"], capsys)
        assert rc == 2
        assert "must equal ngpu" in stderr

    def test_workload_slow_rank_out_of_range(self, capsys):
        rc, stderr = self._rc(
            ["trace", "--cmd", "workload", "--tp", "4", "--cp", "2",
             "--pp", "1", "--dp", "1", "--slow-rank", "99",
             "--out", "/tmp/x.json"], capsys)
        assert rc == 2
        assert "--slow-rank" in stderr

    def test_workload_world_too_large(self, capsys):
        rc, stderr = self._rc(
            ["trace", "--cmd", "workload", "--out", "/tmp/x.json"], capsys)
        assert rc == 2
        assert "512" in stderr

    def test_malformed_fault_spec_exits_2(self, capsys):
        rc, stderr = self._rc(
            ["faults", "--fault", "straggler:rank=xx"], capsys)
        assert rc == 2
        assert stderr.startswith("repro: error:")
        assert len(stderr.strip().splitlines()) == 1

    def test_unknown_fault_type_exits_2(self, capsys):
        rc, stderr = self._rc(["faults", "--fault", "gremlin:rank=1"], capsys)
        assert rc == 2
        assert "unknown fault type" in stderr

    def test_unknown_fault_preset_exits_2(self, capsys):
        rc, stderr = self._rc(["faults", "--preset", "nope"], capsys)
        assert rc == 2
        assert "unknown fault preset" in stderr

    def test_bad_run_policy_exits_2(self, capsys):
        rc, stderr = self._rc(["run", "--policy", "daily"], capsys)
        assert rc == 2
        assert "unknown policy" in stderr
        rc, stderr = self._rc(["run", "--policy", "fixed:x"], capsys)
        assert rc == 2
        assert "fixed:<steps>" in stderr

    def test_unwritable_trace_path_exits_2(self, capsys):
        rc = main(["step", *SMALL_STEP,
                   "--trace", "/no/such/dir/t.json"])
        assert rc == 2
        stderr = capsys.readouterr().err
        assert stderr.startswith("repro: error:")
        assert "No such file" in stderr


class TestSubprocessSmoke:
    """ISSUE-mandated: invoke the real `python -m repro trace` entrypoint."""

    def _run(self, argv):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True, text=True, env=env, cwd=REPO, timeout=120,
        )

    def test_trace_cmd_step_writes_valid_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        proc = self._run(["trace", "--cmd", "step", *SMALL_STEP,
                          "--out", str(path)])
        assert proc.returncode == 0, proc.stderr
        trace = json.loads(path.read_text())
        assert_valid_trace(trace)
        assert trace["otherData"]["source"] == "repro.obs.trace"
        assert any(r["ph"] == "X" for r in trace["traceEvents"])

    def test_unknown_model_is_one_line_no_traceback(self):
        proc = self._run(["step", "--model", "bogus"])
        assert proc.returncode == 2
        assert proc.stderr.startswith("repro: error:")
        assert "Traceback" not in proc.stderr
        assert len(proc.stderr.strip().splitlines()) == 1
