"""Tests for the end-to-end step simulation: the Section 7.3 numbers."""

import pytest

from repro.hardware.cluster import GRAND_TETON_16K, grand_teton
from repro.model.config import LLAMA3_405B, LLAMA3_405B_SCALED_26L
from repro.parallel.config import JobConfig, ParallelConfig, ZeroStage
from repro.train.cost import CostModel
from repro.train.step import simulate_step

PAR_8K = ParallelConfig(tp=8, cp=1, pp=16, dp=128, zero=ZeroStage.ZERO_2)
JOB_8K = JobConfig(seq=8192, gbs=2048, ngpu=16384)
PAR_131K = ParallelConfig(tp=8, cp=16, pp=16, dp=8, zero=ZeroStage.ZERO_2)
JOB_131K = JobConfig(seq=131072, gbs=128, ngpu=16384)


@pytest.fixture(scope="module")
def step_8k():
    return simulate_step(LLAMA3_405B, PAR_8K, JOB_8K, GRAND_TETON_16K)


@pytest.fixture(scope="module")
def step_131k():
    return simulate_step(LLAMA3_405B, PAR_131K, JOB_131K, GRAND_TETON_16K,
                         attention_straggler=1.44)


class TestHeadlineThroughput:
    def test_8k_near_400_tflops(self, step_8k):
        """Section 7.3: 400 TFLOPs/GPU at 8K sequence length."""
        assert 360 < step_8k.tflops_per_gpu < 460

    def test_131k_near_380_tflops(self, step_131k):
        """Section 7.3: 380 TFLOPs/GPU at 131K with the measured 1.44x
        document-mask attention straggler."""
        assert 340 < step_131k.tflops_per_gpu < 440

    def test_long_context_below_short(self, step_8k, step_131k):
        assert step_131k.tflops_per_gpu < step_8k.tflops_per_gpu

    def test_memory_fits_80gb(self, step_8k, step_131k):
        assert step_8k.max_peak_memory_gb < 80
        assert step_131k.max_peak_memory_gb < 80

    def test_step_decomposition(self, step_8k):
        assert step_8k.step_seconds == pytest.approx(
            step_8k.pipeline_seconds + step_8k.exposed_fsdp_seconds
            + step_8k.optimizer_seconds
        )
        assert step_8k.exposed_fsdp_seconds < 0.1 * step_8k.step_seconds


class TestBubbleRatios:
    def test_bs_equals_pp_near_12_percent(self, step_8k):
        """Section 7.3.1: ~12% bubble ratio when bs = pp."""
        assert 0.08 < step_8k.mean_bubble_ratio < 0.20

    def test_bs_twice_pp_near_5_percent(self):
        """Section 7.3.1: ~5% bubble ratio when bs = 2 * pp."""
        par = ParallelConfig(tp=8, cp=1, pp=16, dp=64, zero=ZeroStage.ZERO_1)
        job = JobConfig(seq=8192, gbs=2048, ngpu=8192)
        r = simulate_step(LLAMA3_405B, par, job, GRAND_TETON_16K)
        assert 0.03 < r.mean_bubble_ratio < 0.11
        assert r.mean_bubble_ratio < step_bubble_8k()


def step_bubble_8k():
    return simulate_step(LLAMA3_405B, PAR_8K, JOB_8K,
                         GRAND_TETON_16K).mean_bubble_ratio


class TestCostModel:
    CLUSTER = grand_teton(1024)

    def _cost(self, **kw):
        par = ParallelConfig(tp=8, cp=1, pp=4, dp=32, **kw.pop("par", {}))
        job = JobConfig(seq=8192, gbs=256, ngpu=1024)
        return CostModel(LLAMA3_405B_SCALED_26L, par, job, self.CLUSTER, **kw)

    def test_recompute_inflates_backward(self):
        from repro.pp.layout import build_layout
        layout = build_layout(26, 4, 7)
        stage = layout.stage(3)
        base = self._cost().backward_seconds(stage).compute_seconds
        rec = self._cost(recompute=True).backward_seconds(stage)
        assert rec.compute_seconds > 1.4 * base

    def test_congestion_slows_comm(self):
        base = self._cost().p2p_seconds()
        congested = self._cost(congestion=2.0).p2p_seconds()
        assert congested > base

    def test_straggler_scales_attention(self):
        base = self._cost().layer_attention_seconds()
        slow = self._cost(attention_straggler=1.5).layer_attention_seconds()
        assert slow == pytest.approx(1.5 * base)

    def test_tp_beyond_node_rejected(self):
        par = ParallelConfig(tp=16, cp=1, pp=4, dp=16)
        job = JobConfig(seq=8192, gbs=256, ngpu=1024)
        with pytest.raises(ValueError):
            CostModel(LLAMA3_405B, par, job, self.CLUSTER)

    def test_tp1_cp1_have_no_comm(self):
        par = ParallelConfig(tp=1, cp=1, pp=8, dp=128)
        job = JobConfig(seq=8192, gbs=256, ngpu=1024)
        cost = CostModel(LLAMA3_405B_SCALED_26L, par, job, self.CLUSTER)
        assert cost.layer_tp_comm_seconds() == 0.0
        assert cost.layer_cp_comm_seconds() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            self._cost(attention_straggler=0.5)
        with pytest.raises(ValueError):
            self._cost(mask_fraction=0.0)


class TestTPAblation:
    def test_tp4_beats_tp8_when_memory_allows(self):
        """Section 8.1: on 2K GPUs, reducing TP from 8 to 4 gave ~10%
        end-to-end improvement (when HBM capacity allows it)."""
        cluster = grand_teton(2048)
        job = JobConfig(seq=8192, gbs=512, ngpu=2048)
        tp8 = simulate_step(
            LLAMA3_405B_SCALED_26L,
            ParallelConfig(tp=8, cp=1, pp=4, dp=64, zero=ZeroStage.ZERO_1),
            job, cluster, v=7,
        )
        tp4 = simulate_step(
            LLAMA3_405B_SCALED_26L,
            ParallelConfig(tp=4, cp=1, pp=4, dp=128, zero=ZeroStage.ZERO_1),
            job, cluster, v=7,
        )
        gain = tp4.tflops_per_gpu / tp8.tflops_per_gpu - 1
        assert 0.02 < gain < 0.25
        # The cost: more memory per rank.
        assert tp4.max_peak_memory_gb > tp8.max_peak_memory_gb
