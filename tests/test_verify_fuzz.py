"""Property-style tests for the seeded config fuzzer: a clean library
fuzzes clean, and injected corruption is caught and shrunk."""

import numpy as np
import pytest

from repro.pp.analysis import ScheduleShape
from repro.pp.schedule import (
    PipelineSchedule,
    build_flexible_schedule,
)
from repro.verify.fuzz import (
    FuzzConfig,
    _shrink_candidates,
    check_config,
    run_fuzz,
    sample_config,
    shrink_config,
)


class TestSampling:
    def test_deterministic_per_seed(self):
        a = [sample_config(np.random.default_rng(7)) for _ in range(20)]
        b = [sample_config(np.random.default_rng(7)) for _ in range(20)]
        assert a == b

    def test_samples_are_valid_shapes(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            cfg = sample_config(rng)
            shape = cfg.shape  # raises on invalid (pp, v, nc, nmb)
            assert 1 <= shape.pp <= 8
            assert 1 <= shape.nmb <= 16
            assert 1 <= shape.nc <= shape.nmb

    def test_covers_both_sides_of_degeneration_boundary(self):
        rng = np.random.default_rng(0)
        cfgs = [sample_config(rng) for _ in range(200)]
        assert any(c.nc < c.pp for c in cfgs)
        assert any(c.nc >= c.pp for c in cfgs)


@pytest.mark.slow
class TestCleanFuzz:
    def test_200_configs_zero_violations(self):
        """The acceptance bar: 200 seeded configs over (pp in 1..8,
        nmb in 1..16, nc a divisor of nmb) produce no violations."""
        result = run_fuzz(200, seed=0)
        assert result.ok, [
            f.to_dict() for f in result.failures]
        assert result.cases == 200
        assert result.failed_cases == 0
        # Every catalog family actually ran.
        assert set(result.checks_run) >= {
            "conservation", "program-order", "send-before-recv",
            "stream-overlap", "warmup-depth", "zero-schedule"}

    def test_other_seeds_also_clean(self):
        for seed in (1, 2):
            assert run_fuzz(50, seed=seed).ok


def _drop_first_backward(shape: ScheduleShape) -> PipelineSchedule:
    """Corrupted builder: rank 0 loses its first backward op — breaks
    conservation (the op never runs) without tripping the builder's own
    validate()."""
    good = build_flexible_schedule(shape)
    programs = list(good.programs)
    prog = list(programs[0])
    for i, op in enumerate(prog):
        if op.kind.value == "B":
            del prog[i]
            break
    programs[0] = tuple(prog)
    return PipelineSchedule(name=good.name, shape=shape,
                            programs=tuple(programs))


def _backward_hoisted(shape: ScheduleShape) -> PipelineSchedule:
    """Corrupted builder: the last rank's first backward is hoisted to
    the front of its program, before the forward that produces its
    activations — a program-order violation (and a premature gradient
    'send' upstream)."""
    good = build_flexible_schedule(shape)
    programs = list(good.programs)
    prog = list(programs[-1])
    first_bwd = next(i for i, op in enumerate(prog)
                     if op.kind.value == "B")
    prog.insert(0, prog.pop(first_bwd))
    programs[-1] = tuple(prog)
    return PipelineSchedule(name=good.name, shape=shape,
                            programs=tuple(programs))


class TestCorruptionCaught:
    def test_dropped_backward_caught(self):
        cfg = FuzzConfig(pp=2, v=1, nc=2, nmb=4)
        report = check_config(cfg, build=_drop_first_backward)
        assert not report.ok
        checks = {v.check for v in report.violations}
        assert "conservation" in checks or "deadlock" in checks

    def test_fuzz_catches_and_shrinks_corruption(self):
        """A corrupted generator must be caught by the campaign and
        shrunk to a minimal config that still reproduces it."""
        result = run_fuzz(60, seed=0, build=_drop_first_backward)
        assert not result.ok
        assert result.failures, "failures must carry shrunk reproducers"
        for failure in result.failures:
            # The shrunk config still fails, and no smaller neighbour
            # does — i.e. it is locally minimal.
            assert not failure.shrunk_report.ok
            assert failure.shrunk.cost <= failure.config.cost
            for smaller in _shrink_candidates(failure.shrunk):
                assert check_config(smaller, _drop_first_backward).ok

    def test_hoisted_backward_caught(self):
        cfg = FuzzConfig(pp=2, v=1, nc=2, nmb=4)
        report = check_config(cfg, build=_backward_hoisted)
        assert not report.ok
        assert "program-order" in {v.check for v in report.violations}

    def test_shrink_reaches_minimal_dropped_backward(self):
        cfg = FuzzConfig(pp=4, v=2, nc=4, nmb=8)

        def failing(c):
            return not check_config(c, _drop_first_backward).ok

        shrunk = shrink_config(cfg, failing)
        assert failing(shrunk)
        # Dropping a backward fails for any config, so the shrinker must
        # reach the global minimum.
        assert (shrunk.pp, shrunk.v, shrunk.nc, shrunk.nmb) == (1, 1, 1, 1)

    def test_shrink_rejects_passing_config(self):
        with pytest.raises(ValueError):
            shrink_config(FuzzConfig(pp=2, v=1, nc=2, nmb=4),
                          lambda c: False)


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run_fuzz(40, seed=5)
        b = run_fuzz(40, seed=5)
        assert a == b

    def test_result_is_json_able(self):
        import json

        json.dumps(run_fuzz(10, seed=0).to_dict())
