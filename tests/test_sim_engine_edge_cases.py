"""Edge-case semantics of the fast engine, pinned as regression tests.

Each class pins one corner the differential harness found load-bearing
while rewriting the engine: record() splices interleaved with run(),
advance() beyond and behind the frontier, zero-duration tasks, modifier
chains that restore the original duration (must NOT be tagged
``faulted`` — the rule is ``modified != original``, not "modifiers
ran"), collective group validation, ``TraceEvent.replace`` field
checking, ``RankFold`` validation, and the incremental busy/idle
accounting identity ``busy + idle == makespan`` under fault injection.
"""

import pytest

from repro.faults.models import ComputeStraggler, DegradedLink, FaultPlan
from repro.sim.engine import RankFold, Simulator, TraceEvent


class TestRecordSplices:
    def test_record_advances_the_stream_frontier(self):
        sim = Simulator()
        sim.run(0, "compute", 0.2, "a")
        sim.record(TraceEvent("spliced", "comm", 0, "compute", 0.1, 0.9))
        b = sim.run(0, "compute", 0.1, "b")
        assert b.start == 0.9  # the splice pushed the frontier

    def test_record_behind_the_frontier_does_not_rewind(self):
        sim = Simulator()
        sim.run(0, "compute", 1.0, "a")
        sim.record(TraceEvent("early", "comm", 0, "compute", 0.0, 0.5))
        b = sim.run(0, "compute", 0.1, "b")
        assert b.start == 1.0

    def test_record_counts_toward_busy_and_makespan(self):
        sim = Simulator()
        sim.record(TraceEvent("only", "comm", 3, "p2p", 1.0, 4.0))
        assert sim.makespan() == 4.0
        assert sim.busy_time(3, "p2p") == 3.0
        assert [e.name for e in sim.events_for(3)] == ["only"]

    def test_record_rejects_inverted_span(self):
        with pytest.raises(ValueError, match="ends before it starts"):
            Simulator().record(TraceEvent("bad", "comm", 0, "compute",
                                          2.0, 1.0))

    def test_overlap_checker_sees_recorded_events(self):
        sim = Simulator()
        sim.run(0, "compute", 1.0, "a")
        sim.record(TraceEvent("intruder", "comm", 0, "compute", 0.5, 0.8))
        pairs = sim.overlapping_events()
        assert any({p[0].name, p[1].name} == {"a", "intruder"}
                   for p in pairs)


class TestAdvance:
    def test_advance_past_existing_events(self):
        sim = Simulator()
        sim.run(0, "compute", 1.0, "a")
        sim.advance(0, "compute", 10.0)
        b = sim.run(0, "compute", 1.0, "b")
        assert b.start == 10.0

    def test_advance_backwards_is_a_noop(self):
        sim = Simulator()
        sim.run(0, "compute", 5.0, "a")
        sim.advance(0, "compute", 2.0)
        b = sim.run(0, "compute", 1.0, "b")
        assert b.start == 5.0

    def test_advance_adds_no_events_and_no_busy_time(self):
        sim = Simulator()
        sim.advance(1, "tp", 7.0)
        assert sim.events == []
        assert sim.busy_time(1, "tp") == 0.0
        assert sim.now(1, "tp") == 7.0


class TestZeroDuration:
    def test_zero_duration_task_is_a_point_event(self):
        sim = Simulator()
        sim.run(0, "compute", 1.0, "a")
        z = sim.run(0, "compute", 0.0, "zero")
        assert z.start == z.end == 1.0
        assert z.duration == 0.0

    def test_zero_duration_still_orders_dependents(self):
        sim = Simulator()
        z = sim.run(0, "compute", 0.0, "zero", not_before=3.0)
        b = sim.run(1, "compute", 1.0, "b", after=[z])
        assert b.start == 3.0

    def test_zero_duration_collective(self):
        sim = Simulator()
        sim.run(1, "tp", 2.0, "w")
        events = sim.run_collective([0, 1], "tp", 0.0, "barrier")
        # Each rank's span starts at its own join time; the slowest
        # rank's event is the zero-width point.
        assert events[0].start == 0.0
        assert events[0].end == events[1].end == 2.0
        assert events[1].duration == 0.0


class TestModifierFaultTagging:
    def test_restoring_chain_is_not_tagged_faulted(self):
        # (d * 2.0) * 0.5 == d bitwise for normal floats: the chain ran
        # but the duration is unchanged, so no "faulted" tag.
        sim = Simulator()
        sim.add_duration_modifier(lambda r, s, k, n, d: d * 2.0)
        sim.add_duration_modifier(lambda r, s, k, n, d: d * 0.5)
        e = sim.run(0, "compute", 0.3, "a")
        assert e.end == pytest.approx(0.3)
        assert "faulted" not in e.tags
        events = sim.run_collective([0, 1], "tp", 0.1, "ag")
        assert all("faulted" not in ev.tags for ev in events.values())

    def test_changing_chain_is_tagged_faulted(self):
        sim = Simulator()
        sim.add_duration_modifier(lambda r, s, k, n, d: d * 2.0)
        e = sim.run(0, "compute", 0.3, "a")
        assert "faulted" in e.tags

    def test_identity_modifier_is_not_tagged(self):
        sim = Simulator()
        sim.add_duration_modifier(lambda r, s, k, n, d: d)
        assert "faulted" not in sim.run(0, "compute", 0.3, "a").tags

    def test_negative_modified_duration_rejected(self):
        sim = Simulator()
        sim.add_duration_modifier(lambda r, s, k, n, d: d - 5.0)
        with pytest.raises(ValueError, match="negative"):
            sim.run(0, "compute", 1.0, "a")
        with pytest.raises(ValueError, match="negative"):
            sim.run_collective([0, 1], "tp", 1.0, "ag")

    def test_faulted_tag_appends_to_existing_tags(self):
        sim = Simulator()
        sim.add_duration_modifier(lambda r, s, k, n, d: d + 1.0)
        e = sim.run(0, "compute", 1.0, "a", tags=("grad",))
        assert e.tags == ("grad", "faulted")


class TestCollectiveValidation:
    def test_duplicate_ranks_message_names_the_task(self):
        with pytest.raises(ValueError, match="dup"):
            Simulator().run_collective([2, 2], "tp", 1.0, "dup")

    def test_empty_group_message(self):
        with pytest.raises(ValueError, match="at least one rank"):
            Simulator().run_collective([], "tp", 1.0, "empty")

    def test_negative_duration_rejected_without_modifiers(self):
        # The reference engine routes even the no-modifier case through
        # the duration check; the fast path must keep raising.
        with pytest.raises(ValueError, match="negative"):
            Simulator().run_collective([0, 1], "tp", -0.5, "neg")


class TestTraceEventReplace:
    def test_replace_changes_only_named_fields(self):
        e = TraceEvent("a", "compute", 0, "s", 0.0, 2.0, (0, 1), ("x",))
        r = e.replace(name="b", end=3.0)
        assert (r.name, r.end) == ("b", 3.0)
        assert (r.kind, r.rank, r.stream, r.start, r.group, r.tags) == \
            ("compute", 0, "s", 0.0, (0, 1), ("x",))
        assert (e.name, e.end) == ("a", 2.0)  # original untouched

    def test_replace_rejects_unknown_fields(self):
        e = TraceEvent("a", "compute", 0, "s", 0.0, 1.0)
        with pytest.raises(TypeError):
            e.replace(durationn=2.0)

    def test_equality_and_hash_are_by_value(self):
        a = TraceEvent("a", "compute", 0, "s", 0.0, 1.0)
        b = TraceEvent("a", "compute", 0, "s", 0.0, 1.0)
        assert a == b and hash(a) == hash(b)
        assert a != b.replace(end=2.0)


class TestRankFoldValidation:
    def test_rejects_nonpositive_shape(self):
        with pytest.raises(ValueError):
            RankFold(replicas=0, stride=4)
        with pytest.raises(ValueError):
            RankFold(replicas=2, stride=0)

    def test_world_size(self):
        assert RankFold(replicas=8, stride=4).world_size == 32


class TestBusyIdleAccounting:
    """The satellite regression: incremental busy/idle bookkeeping must
    satisfy ``busy + idle == makespan`` per stream on a fault-injected
    run — exactly, not approximately, because busy accumulates the same
    ``end - start`` spans the makespan maximises over."""

    def _faulted_sim(self):
        from repro.debug.workload import WorkloadSpec, run_synthetic_workload
        from repro.parallel.config import ParallelConfig
        from repro.parallel.mesh import DeviceMesh

        mesh = DeviceMesh(ParallelConfig(tp=2, cp=2, dp=2))
        sim = Simulator()
        run_synthetic_workload(
            mesh, WorkloadSpec(steps=3, layers=4), sim=sim,
            faults=FaultPlan((
                ComputeStraggler(rank=5, extra_seconds=0.3),
                DegradedLink(dim="tp", group=1, scale=3.0),
            )))
        return sim

    def test_busy_plus_idle_equals_makespan_per_stream(self):
        sim = self._faulted_sim()
        makespan = sim.makespan()
        assert makespan > 0
        pairs = {(e.rank, e.stream) for e in sim.events}
        assert pairs
        for rank, stream in sorted(pairs):
            busy = sim.busy_time(rank, stream)
            idle = sim.idle_time(rank, stream)
            assert busy + idle == makespan, (rank, stream)

    def test_incremental_busy_matches_event_sum(self):
        sim = self._faulted_sim()
        for rank, stream in {(e.rank, e.stream) for e in sim.events}:
            expected = sum(e.end - e.start for e in sim.events
                           if e.rank == rank and e.stream == stream)
            assert sim.busy_time(rank, stream) == expected, (rank, stream)

    def test_accounting_survives_record_and_advance(self):
        sim = Simulator()
        sim.run(0, "compute", 1.5, "a")
        sim.advance(0, "compute", 4.0)
        sim.record(TraceEvent("spliced", "comm", 0, "compute", 4.0, 6.0))
        sim.run(0, "compute", 0.5, "b")
        assert sim.makespan() == 6.5
        assert sim.busy_time(0, "compute") == 1.5 + 2.0 + 0.5
        assert sim.idle_time(0, "compute") == 6.5 - 4.0
