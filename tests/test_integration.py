"""Cross-module integration tests: planner -> schedule -> executor ->
memory, across the model zoo, plus consistency checks between analytical
formulas and event-level simulation."""

import numpy as np
import pytest

from repro.hardware.cluster import GRAND_TETON_16K, grand_teton
from repro.model.config import LLAMA3_8B, LLAMA3_70B, LLAMA3_405B
from repro.model.flops import model_params
from repro.parallel.config import JobConfig
from repro.parallel.mesh import DeviceMesh
from repro.parallel.planner import plan_parallelism
from repro.pp.analysis import ScheduleShape, default_nc
from repro.pp.schedule import build_flexible_schedule
from repro.train.step import simulate_step


class TestPlannerToStepAcrossZoo:
    """The full chain must work for every model at an appropriate scale."""

    CASES = [
        (LLAMA3_8B, JobConfig(seq=8192, gbs=512, ngpu=512), grand_teton(512)),
        (LLAMA3_70B, JobConfig(seq=8192, gbs=1024, ngpu=2048),
         grand_teton(2048)),
        (LLAMA3_405B, JobConfig(seq=8192, gbs=2048, ngpu=16384),
         GRAND_TETON_16K),
    ]

    @pytest.mark.parametrize(
        "model,job,cluster", CASES,
        ids=[m.name for m, _, _ in CASES],
    )
    def test_plan_then_simulate(self, model, job, cluster):
        plan = plan_parallelism(model, job, cluster)
        rep = simulate_step(model, plan.parallel, job, cluster,
                            v=plan.virtual_stages)
        assert rep.max_peak_memory_gb < cluster.gpu.hbm_capacity_gb
        assert 100 < rep.tflops_per_gpu < 700
        assert rep.step_seconds > 0

    def test_bigger_models_need_more_model_parallelism(self):
        sizes = []
        for model, job, cluster in self.CASES:
            plan = plan_parallelism(model, job, cluster)
            sizes.append((model_params(model),
                          plan.parallel.model_parallel_size))
        sizes.sort()
        assert sizes[0][1] <= sizes[1][1] <= sizes[2][1]


class TestMeshMatchesClusterTopology:
    def test_tp_groups_stay_on_nvlink(self):
        """The [TP, CP, PP, DP] ordering exists so TP groups live inside
        nodes — verify against the physical cluster mapping."""
        from repro.parallel.config import ParallelConfig
        mesh = DeviceMesh(ParallelConfig(tp=8, cp=2, pp=4, dp=4))
        cluster = grand_teton(256)
        for rank in range(0, mesh.world_size, 37):
            group = mesh.group_of(rank, "tp")
            assert cluster.group_link(group) is cluster.intra_node_link

    def test_dp_groups_span_nodes(self):
        from repro.parallel.config import ParallelConfig
        mesh = DeviceMesh(ParallelConfig(tp=8, cp=2, pp=4, dp=4))
        cluster = grand_teton(256)
        group = mesh.group_of(0, "dp")
        assert cluster.group_link(group) is cluster.inter_node_link


class TestAnalyticalVsEventLevel:
    def test_bubble_matches_closed_form_ideal(self):
        """With homogeneous stages and free P2P, the measured bubble
        equals the Section 3.1.1 formula exactly."""
        from repro.pp.layout import build_layout
        from repro.train.cost import StageCost
        from repro.train.executor import execute_pipeline

        shape = ScheduleShape(pp=4, v=2, nc=4, nmb=16)
        sched = build_flexible_schedule(shape)
        layout = build_layout(8, 4, 2)
        run = execute_pipeline(
            sched, layout,
            lambda s: StageCost(1.0 * s.n_layers, 0, 0),
            lambda s: StageCost(2.0 * s.n_layers, 0, 0),
            p2p_seconds=0.0,
        )
        assert run.mean_bubble_ratio == pytest.approx(
            shape.ideal_bubble_ratio, rel=1e-9
        )

    def test_memory_tracker_vs_planner_estimate(self):
        """Event-level peak memory stays within the planner's closed-form
        envelope for the production configuration."""
        from repro.parallel.config import ParallelConfig, ZeroStage
        from repro.parallel.memory import estimate_rank_memory
        from repro.model.memory import GIB

        par = ParallelConfig(tp=8, cp=1, pp=16, dp=128,
                             zero=ZeroStage.ZERO_2)
        job = JobConfig(seq=8192, gbs=2048, ngpu=16384)
        rep = simulate_step(LLAMA3_405B, par, job, GRAND_TETON_16K)
        nmb = job.micro_batches(par)
        from repro.pp.analysis import peak_in_flight_microbatches
        in_flight = peak_in_flight_microbatches(
            16, 0, 8, default_nc(16, nmb), nmb)
        closed = estimate_rank_memory(
            LLAMA3_405B, par, job, layers_on_rank=8,
            in_flight_microbatches=in_flight, virtual_stages=8,
            has_embedding=True,
        ).total / GIB
        measured = rep.per_rank_peak_memory_gb[0]
        assert measured == pytest.approx(closed, rel=0.25)

    def test_chrome_trace_round_trip(self, tmp_path):
        import json

        from repro.debug.workload import run_synthetic_workload
        from repro.obs.trace import export_chrome_trace, validate_trace
        from repro.parallel.config import ParallelConfig

        mesh = DeviceMesh(ParallelConfig(tp=2, cp=2))
        sim = run_synthetic_workload(mesh)
        path = tmp_path / "trace.json"
        export_chrome_trace(sim, str(path), mesh=mesh)
        loaded = json.loads(path.read_text())
        assert validate_trace(loaded) == []
        spans = [r for r in loaded["traceEvents"] if r.get("ph") == "X"]
        assert len(spans) == len(sim.events)


class TestSeededDeterminism:
    def test_fleet_imbalance_reproducible(self):
        from repro.cp.imbalance import simulate_fleet_imbalance

        cluster = grand_teton(256)
        kwargs = dict(seq=131072, cp=8, n_dp_groups=4, steps=2,
                      mean_doc_len=16384.0)
        a = simulate_fleet_imbalance(cluster,
                                     rng=np.random.default_rng(3), **kwargs)
        b = simulate_fleet_imbalance(cluster,
                                     rng=np.random.default_rng(3), **kwargs)
        np.testing.assert_array_equal(a.compute_seconds, b.compute_seconds)
        assert a.elapsed_seconds == b.elapsed_seconds
