"""Tests for the schedule autotuner."""

import pytest

from repro.hardware.cluster import grand_teton
from repro.model.config import LLAMA3_405B_SCALED_26L
from repro.parallel.config import JobConfig, ParallelConfig, ZeroStage
from repro.pp.autotune import autotune_schedule, best_schedule

CLUSTER = grand_teton(1536)
PAR = ParallelConfig(tp=8, cp=1, pp=4, dp=48, zero=ZeroStage.ZERO_1)
JOB = JobConfig(seq=8192, gbs=576, ngpu=1536)


@pytest.fixture(scope="module")
def candidates():
    return autotune_schedule(LLAMA3_405B_SCALED_26L, PAR, JOB, CLUSTER,
                             memory_budget_gb=40.0)


class TestAutotune:
    def test_feasible_sorted_first_by_tflops(self, candidates):
        feasible = [c for c in candidates if c.fits]
        assert feasible
        tflops = [c.tflops_per_gpu for c in feasible]
        assert tflops == sorted(tflops, reverse=True)
        first_infeasible = next(
            (i for i, c in enumerate(candidates) if not c.fits), None)
        if first_infeasible is not None:
            assert all(not c.fits for c in candidates[first_infeasible:])

    def test_covers_both_schedule_kinds(self, candidates):
        kinds = {c.schedule_kind for c in candidates}
        assert kinds == {"flexible", "afab"}

    def test_nc_candidates_divide_nmb(self, candidates):
        nmb = JOB.micro_batches(PAR)
        assert all(nmb % c.nc == 0 for c in candidates)

    def test_best_schedule_is_feasible(self):
        best = best_schedule(LLAMA3_405B_SCALED_26L, PAR, JOB, CLUSTER,
                             memory_budget_gb=40.0)
        assert best.fits
        assert best.max_memory_gb <= 40.0

    def test_tight_budget_prefers_lean_schedules(self):
        """Shrinking the memory budget pushes the winner toward 1F1B-like
        small-nc schedules — the Figure 9 trade-off, automated."""
        roomy = best_schedule(LLAMA3_405B_SCALED_26L, PAR, JOB, CLUSTER,
                              memory_budget_gb=40.0)
        tight = best_schedule(LLAMA3_405B_SCALED_26L, PAR, JOB, CLUSTER,
                              memory_budget_gb=27.0)
        assert tight.max_memory_gb <= 27.0
        assert tight.tflops_per_gpu <= roomy.tflops_per_gpu

    def test_impossible_budget_raises(self):
        with pytest.raises(ValueError):
            best_schedule(LLAMA3_405B_SCALED_26L, PAR, JOB, CLUSTER,
                          memory_budget_gb=1.0)

    def test_describe(self, candidates):
        text = candidates[0].describe()
        assert "TFLOPs" in text and "GiB" in text
        assert "over budget" in next(
            c for c in candidates if not c.fits).describe()
