"""Engine-differential fuzz mode: determinism, shrinking, CLI wiring.

The campaign property: every random submission sequence must replay
*bitwise* identically on the fast engine and the frozen reference
engine.  These tests pin the seeded determinism contract, prove the
harness actually catches a corrupted engine (the ``engine`` hook) and
shrinks the divergence to a minimal sequence, and exercise the
``repro verify --engine`` CLI surface end to end.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.obs.report import verify_report
from repro.sim.engine import Simulator
from repro.verify.engine_fuzz import (
    EngineFuzzConfig,
    check_case,
    load_reference_simulator,
    run_engine_fuzz,
    sample_case,
    shrink_case,
)

#: Tier-1 campaign size; the full 500-sequence acceptance campaign runs
#: in ci.yml (`repro verify --engine --fuzz 500`) and in the slow-marked
#: test in tests/harness/test_differential.py.
CI_CASES, CI_SEED = 150, 0


def _json_out(capsys) -> dict:
    return json.loads(capsys.readouterr().out)


class _CorruptedSimulator(Simulator):
    """A fast engine with a subtle float bug: durations above one second
    are inflated by one part in ten million — exactly the class of
    arithmetic-reordering drift the bitwise contract exists to catch."""

    def run(self, rank, stream, duration, name, kind="compute",
            after=None, not_before=0.0, tags=()):
        if duration > 1.0:
            duration *= 1.0000001
        return super().run(rank, stream, duration, name, kind=kind,
                           after=after, not_before=not_before, tags=tags)


class TestCampaign:
    def test_deterministic_per_seed(self):
        a = run_engine_fuzz(EngineFuzzConfig(cases=12, seed=5))
        b = run_engine_fuzz(EngineFuzzConfig(cases=12, seed=5))
        assert a.to_dict() == b.to_dict()

    def test_ci_campaign_is_clean(self):
        result = run_engine_fuzz(EngineFuzzConfig(cases=CI_CASES,
                                                  seed=CI_SEED))
        assert result.ok, (
            f"{result.failed_cases} divergences; first: "
            f"{result.failures[0].describe() if result.failures else '-'}")
        assert result.cases_run == CI_CASES

    def test_sampler_draws_valid_sequences(self):
        rng = np.random.default_rng(123)
        reference_cls = load_reference_simulator()
        ops_seen = set()
        for _ in range(30):
            case = sample_case(rng, world=4)
            ops_seen.update(op.op for op in case.ops)
            # Dep references only point at earlier producer uids.
            for i, op in enumerate(case.ops):
                producers = {p.uid for p in case.ops[:i]
                             if p.op != "advance"}
                assert set(op.deps) <= producers
            assert not check_case(case, reference_cls)
        assert ops_seen == {"run", "collective", "advance", "record"}


class TestCorruptedEngine:
    def test_detects_and_shrinks_a_corrupted_engine(self):
        result = run_engine_fuzz(EngineFuzzConfig(cases=30, seed=0),
                                 engine=_CorruptedSimulator)
        assert not result.ok
        assert result.failed_cases > 0
        failure = result.failures[0]
        assert failure.problems and failure.shrunk_problems
        assert failure.shrunk.cost <= failure.case.cost
        # The minimal reproducer still diverges on its own.
        assert check_case(failure.shrunk, load_reference_simulator(),
                          engine=_CorruptedSimulator)

    def test_shrinker_strictly_minimises(self):
        reference_cls = load_reference_simulator()
        rng = np.random.default_rng(7)
        # Find a diverging case for the corrupted engine, then shrink it.
        case = None
        for _ in range(50):
            candidate = sample_case(rng)
            if check_case(candidate, reference_cls,
                          engine=_CorruptedSimulator):
                case = candidate
                break
        assert case is not None, "sampler never drew a duration > 1.0"
        shrunk = shrink_case(
            case,
            lambda c: bool(check_case(c, reference_cls,
                                      engine=_CorruptedSimulator)))
        # Minimal: dropping any further submission makes it pass, so the
        # shrunk sequence is dominated by the single corrupted run op.
        assert len(shrunk.ops) <= 2
        assert any(op.op == "run" and op.duration > 1.0
                   for op in shrunk.ops)

    def test_clean_engine_has_nothing_to_shrink(self):
        reference_cls = load_reference_simulator()
        rng = np.random.default_rng(0)
        for _ in range(10):
            assert not check_case(sample_case(rng), reference_cls,
                                  engine=Simulator)


class TestReportIntegration:
    def test_verify_report_folds_in_engine_fuzz(self):
        result = run_engine_fuzz(EngineFuzzConfig(cases=4, seed=0))
        rep = verify_report(None, (), engine_fuzz=result)
        assert rep["ok"] is result.ok
        assert rep["engine_fuzz"]["cases"] == 4
        assert "fuzz" not in rep and "fault_fuzz" not in rep

    def test_failing_engine_fuzz_fails_the_report(self):
        result = run_engine_fuzz(EngineFuzzConfig(cases=30, seed=0),
                                 engine=_CorruptedSimulator)
        rep = verify_report(None, (), engine_fuzz=result)
        assert rep["ok"] is False
        assert rep["engine_fuzz"]["failed_cases"] > 0
        assert rep["engine_fuzz"]["failures"][0]["shrunk_case"]["ops"]


class TestCli:
    def test_verify_engine_json(self, capsys):
        rc = main(["verify", "--engine", "--fuzz", "10", "--seed", "0",
                   "--no-oracles", "--no-step-invariants", "--json"])
        rep = _json_out(capsys)
        assert rc == 0 and rep["ok"] is True
        assert rep["engine_fuzz"]["cases"] == 10
        assert rep["engine_fuzz"]["failed_cases"] == 0
        assert "fuzz" not in rep and "fault_fuzz" not in rep

    def test_verify_engine_text(self, capsys):
        rc = main(["verify", "--engine", "--fuzz", "5",
                   "--no-oracles", "--no-step-invariants"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "engine fuzz: 5 submission sequences" in out
        assert "0 diverged from reference" in out

    def test_engine_and_faults_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["verify", "--engine", "--faults"])
        assert exc.value.code == 2

    def test_engine_trace_prints_note(self, tmp_path, capsys):
        path = tmp_path / "unused.json"
        rc = main(["verify", "--engine", "--fuzz", "3",
                   "--no-oracles", "--no-step-invariants", "--json",
                   "--trace", str(path)])
        captured = capsys.readouterr()
        assert rc == 0
        assert "no effect with --engine" in captured.err
        assert not path.exists()
