"""Tests for slow-rank localisation (Section 6.1) and memory snapshots
(Section 6.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.debug.memory_snapshot import (
    MemorySnapshot,
    pp_output_release_savings,
)
from repro.debug.trace_analysis import identify_slow_rank
from repro.debug.workload import run_synthetic_workload
from repro.parallel.config import ParallelConfig
from repro.parallel.mesh import DeviceMesh
from repro.pp.analysis import ScheduleShape
from repro.pp.schedule import build_flexible_schedule
from repro.sim.engine import Simulator


class TestFigure8Scenario:
    """The paper's worked example: 8 GPUs, (cp=2, tp=4)."""

    MESH = DeviceMesh(ParallelConfig(tp=4, cp=2))

    def test_finds_injected_fault_on_rank_6(self):
        sim = run_synthetic_workload(self.MESH, slowdown={6: 0.5})
        rep = identify_slow_rank(sim, self.MESH)
        assert rep.slow_rank == 6
        assert rep.attribution == "compute"

    def test_search_descends_cp_before_tp(self):
        sim = run_synthetic_workload(self.MESH, slowdown={6: 0.5})
        rep = identify_slow_rank(sim, self.MESH)
        dims = [d.dim for d in rep.decisions]
        assert dims.index("cp") < dims.index("tp")

    def test_victim_rank_not_blamed(self):
        """Rank 2 shares a TP group with... no — rank 6's CP peer is rank
        2; rank 2 looks slow inside its TP group but must not be the
        verdict."""
        sim = run_synthetic_workload(self.MESH, slowdown={6: 0.5})
        rep = identify_slow_rank(sim, self.MESH)
        assert rep.slow_rank != 2

    def test_describe_readable(self):
        sim = run_synthetic_workload(self.MESH, slowdown={6: 0.5})
        text = identify_slow_rank(sim, self.MESH).describe()
        assert "slow rank: 6" in text


class TestTopDown4D:
    MESH = DeviceMesh(ParallelConfig(tp=2, cp=2, pp=2, dp=2))

    @settings(max_examples=16, deadline=None)
    @given(victim=st.integers(min_value=0, max_value=15))
    def test_any_fault_is_localised(self, victim):
        sim = run_synthetic_workload(self.MESH, slowdown={victim: 0.7})
        rep = identify_slow_rank(sim, self.MESH)
        assert rep.slow_rank == victim

    def test_no_comm_events_raises(self):
        sim = Simulator()
        sim.run(0, "compute", 1.0, "only-compute")
        with pytest.raises(ValueError):
            identify_slow_rank(sim, self.MESH)

    def test_healthy_fleet_attributes_communication(self):
        sim = run_synthetic_workload(self.MESH)
        rep = identify_slow_rank(sim, self.MESH)
        assert rep.attribution == "communication"
        assert rep.compute_excess_seconds == pytest.approx(0.0, abs=1e-9)


class TestMemorySnapshot:
    def test_peak_and_attribution(self):
        snap = MemorySnapshot()
        snap.alloc(0.0, "weights", 100)
        snap.alloc(1.0, "activations", 50)
        snap.free(2.0, "activations")
        snap.alloc(3.0, "activations", 20)
        peak, t = snap.peak()
        assert peak == 150 and t == 1.0
        assert snap.live_at_peak() == {"weights": 100, "activations": 50}

    def test_free_more_than_held_rejected(self):
        snap = MemorySnapshot()
        snap.alloc(0.0, "x", 10)
        with pytest.raises(ValueError):
            snap.free(1.0, "x", 20)

    def test_partial_free(self):
        snap = MemorySnapshot()
        snap.alloc(0.0, "x", 10)
        snap.free(1.0, "x", 4)
        assert snap.timeline()[-1][1] == 6

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            MemorySnapshot().alloc(0.0, "x", -1)


class TestOutputReleaseOptimization:
    def test_early_release_saves_memory(self):
        """Section 6.3: releasing the P2P-sent forward output (the
        autograd engine would hold it until backward) lowers peak."""
        sched = build_flexible_schedule(ScheduleShape(pp=4, v=2, nc=4,
                                                      nmb=8))
        without, with_release = pp_output_release_savings(
            sched, ppr=0, output_bytes=1.0, act_bytes=4.0,
        )
        assert with_release < without

    def test_saving_proportional_to_in_flight(self):
        sched = build_flexible_schedule(ScheduleShape(pp=4, v=2, nc=4,
                                                      nmb=8))
        w1, r1 = pp_output_release_savings(sched, 0, output_bytes=1.0,
                                           act_bytes=4.0)
        w2, r2 = pp_output_release_savings(sched, 0, output_bytes=2.0,
                                           act_bytes=4.0)
        assert (w2 - r2) == pytest.approx(2 * (w1 - r1))

    def test_validation(self):
        sched = build_flexible_schedule(ScheduleShape(pp=2, v=1, nc=2,
                                                      nmb=2))
        with pytest.raises(ValueError):
            pp_output_release_savings(sched, 0, -1.0, 1.0)
