"""Tests for 4D config and device mesh."""

import pytest
from hypothesis import given, strategies as st

from repro.parallel.config import JobConfig, ParallelConfig
from repro.parallel.mesh import DeviceMesh, MeshCoord


class TestParallelConfig:
    def test_world_size(self):
        p = ParallelConfig(tp=8, cp=16, pp=16, dp=8)
        assert p.world_size == 16384
        assert p.model_parallel_size == 128
        assert p.grad_shard_degree == 128

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelConfig(tp=0)

    def test_describe(self):
        s = ParallelConfig(tp=8, pp=2).describe()
        assert "tp=8" in s and "pp=2" in s


class TestJobConfig:
    def test_token_budget_16m(self):
        short = JobConfig(seq=8192, gbs=2048, ngpu=16384)
        long = JobConfig(seq=131072, gbs=128, ngpu=16384)
        assert short.tokens_per_step == long.tokens_per_step == 16 * 2**20

    def test_batch_per_dp_group(self):
        job = JobConfig(seq=8192, gbs=2048, ngpu=16384)
        p = ParallelConfig(tp=8, cp=1, pp=16, dp=128)
        assert job.batch_per_dp_group(p) == 16
        assert job.micro_batches(p) == 16

    def test_mismatched_world_size_rejected(self):
        job = JobConfig(seq=8192, gbs=2048, ngpu=16384)
        with pytest.raises(ValueError):
            job.batch_per_dp_group(ParallelConfig(tp=8))

    def test_indivisible_gbs_rejected(self):
        job = JobConfig(seq=128, gbs=10, ngpu=8)
        with pytest.raises(ValueError):
            job.batch_per_dp_group(ParallelConfig(tp=1, cp=1, pp=2, dp=4))


class TestDeviceMesh:
    MESH = DeviceMesh(ParallelConfig(tp=4, cp=2, pp=2, dp=2))

    def test_tp_is_innermost(self):
        """[TP, CP, PP, DP] ordering: adjacent ranks differ in TP only
        (Section 5.2 places chatty TP on NVLink)."""
        c0, c1 = self.MESH.coord_of(0), self.MESH.coord_of(1)
        assert (c0.cp, c0.pp, c0.dp) == (c1.cp, c1.pp, c1.dp)
        assert c1.tp == c0.tp + 1

    def test_round_trip(self):
        for rank in range(self.MESH.world_size):
            assert self.MESH.rank_of(self.MESH.coord_of(rank)) == rank

    def test_tp_group_contiguous(self):
        assert self.MESH.group_of(0, "tp") == [0, 1, 2, 3]
        assert self.MESH.group_of(5, "tp") == [4, 5, 6, 7]

    def test_cp_group_stride_tp(self):
        assert self.MESH.group_of(0, "cp") == [0, 4]

    def test_dp_group_outermost_stride(self):
        assert self.MESH.group_of(0, "dp") == [0, 16]

    def test_all_groups_partition_world(self):
        for dim in ("tp", "cp", "pp", "dp"):
            groups = self.MESH.all_groups(dim)
            flat = [r for g in groups for r in g]
            assert sorted(flat) == list(range(self.MESH.world_size))

    def test_dp_cp_group(self):
        group = self.MESH.dp_cp_group_of(0)
        assert len(group) == 4  # dp * cp
        coords = [self.MESH.coord_of(r) for r in group]
        assert all((c.tp, c.pp) == (0, 0) for c in coords)

    def test_pp_neighbor(self):
        rank = 0
        nxt = self.MESH.pp_neighbor(rank, +1)
        assert self.MESH.coord_of(nxt).pp == 1
        assert self.MESH.pp_neighbor(nxt, -1) == rank

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            self.MESH.coord_of(self.MESH.world_size)
        with pytest.raises(ValueError):
            self.MESH.group_of(0, "xx")
        with pytest.raises(ValueError):
            self.MESH.rank_of(MeshCoord(tp=9, cp=0, pp=0, dp=0))
        with pytest.raises(ValueError):
            self.MESH.pp_neighbor(0, 2)

    @given(st.integers(min_value=0, max_value=31))
    def test_group_membership_reflexive(self, rank):
        for dim in ("tp", "cp", "pp", "dp"):
            assert rank in self.MESH.group_of(rank, dim)


class TestExpertParallelMesh:
    """The 5th mesh dimension: [TP, CP, EP, PP, DP], EP between CP and
    PP so the MoE all-to-all rides the fastest links the mesh allows."""

    MESH = DeviceMesh(ParallelConfig(tp=2, cp=2, ep=2, pp=2, dp=2))

    def test_world_size_includes_ep(self):
        assert self.MESH.world_size == 32
        assert ParallelConfig(tp=2, ep=4).world_size == 8

    def test_ep_group_stride_tp_cp(self):
        # EP neighbours differ by the tp * cp inner-block size.
        assert self.MESH.group_of(0, "ep") == [0, 4]
        assert self.MESH.group_of(3, "ep") == [3, 7]

    def test_ep_round_trip(self):
        for rank in range(self.MESH.world_size):
            assert self.MESH.rank_of(self.MESH.coord_of(rank)) == rank

    def test_ep_groups_partition_world(self):
        groups = self.MESH.all_groups("ep")
        flat = [r for g in groups for r in g]
        assert sorted(flat) == list(range(self.MESH.world_size))

    def test_ep1_bitwise_matches_4d_decomposition(self):
        """With ep=1 the 5D formula collapses to the paper's 4D one."""
        mesh = DeviceMesh(ParallelConfig(tp=4, cp=2, pp=2, dp=2))
        p = mesh.parallel
        for rank in range(mesh.world_size):
            c = mesh.coord_of(rank)
            assert c.ep == 0
            assert rank == ((c.dp * p.pp + c.pp) * p.cp + c.cp) * p.tp + c.tp

    def test_dp_cp_group_fixes_ep(self):
        # Each EP rank owns disjoint experts: its gradient group spans
        # only the DP x CP replicas of the same expert shard.
        group = self.MESH.dp_cp_group_of(4)
        assert len(group) == 4  # dp * cp
        coords = [self.MESH.coord_of(r) for r in group]
        assert all((c.tp, c.ep, c.pp) == (0, 1, 0) for c in coords)

    def test_pp_neighbor_keeps_ep(self):
        nxt = self.MESH.pp_neighbor(4, +1)
        c0, c1 = self.MESH.coord_of(4), self.MESH.coord_of(nxt)
        assert c1.pp == c0.pp + 1
        assert (c1.tp, c1.cp, c1.ep, c1.dp) == (c0.tp, c0.cp, c0.ep, c0.dp)

    def test_batch_per_dp_group_divides_by_ep(self):
        job = JobConfig(seq=128, gbs=16, ngpu=32)
        p = ParallelConfig(tp=2, cp=2, ep=2, pp=2, dp=2)
        assert job.batch_per_dp_group(p) == 4  # gbs / (dp * ep)

    def test_ep_describe(self):
        assert "ep=2" in ParallelConfig(tp=2, ep=2, dp=2).describe()
        assert "ep=" not in ParallelConfig(tp=2, dp=2).describe()


class TestPPStageRanks:
    """Satellite: ``pp_stage_ranks`` is now built arithmetically from the
    decomposition formula; pin equality with the old O(world) scan on
    three standard meshes."""

    MESHES = (
        DeviceMesh(ParallelConfig(tp=8, cp=1, pp=16, dp=128)),   # Table 2 r1
        DeviceMesh(ParallelConfig(tp=8, cp=16, pp=16, dp=8)),    # Table 2 r2
        DeviceMesh(ParallelConfig(tp=2, cp=2, ep=2, pp=2, dp=2)),  # 5D
    )

    @staticmethod
    def _scan(mesh, pp_idx):
        return [r for r in range(mesh.world_size)
                if mesh.coord_of(r).pp == pp_idx]

    @pytest.mark.parametrize("mesh", MESHES, ids=("r1", "r2", "5d"))
    def test_matches_coord_scan(self, mesh):
        for pp_idx in range(mesh.parallel.pp):
            assert mesh.pp_stage_ranks(pp_idx) == self._scan(mesh, pp_idx)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            self.MESHES[2].pp_stage_ranks(2)
