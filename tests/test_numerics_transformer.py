"""Tests for the numerics-testbed transformer, including gradient checks."""

import zlib

import numpy as np
import pytest

from repro.numerics.precision import ALL_BF16, ALL_FP32
from repro.numerics.transformer import TinyConfig, TinyTransformer


@pytest.fixture(scope="module")
def model():
    return TinyTransformer.create(TinyConfig(), seed=1)


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(2)
    cfg = TinyConfig()
    return (rng.integers(0, cfg.vocab, 16), rng.integers(0, cfg.vocab, 16))


class TestForward:
    def test_loss_is_finite_and_near_log_vocab(self, model, batch):
        loss, _ = model.forward(*batch, ALL_FP32)
        assert np.isfinite(loss)
        # Random init: loss should be near ln(vocab).
        assert abs(loss - np.log(model.cfg.vocab)) < 1.5

    def test_bf16_close_to_fp32(self, model, batch):
        l16, _ = model.forward(*batch, ALL_BF16)
        l32, _ = model.forward(*batch, ALL_FP32)
        assert abs(l16 - l32) < 0.05

    def test_input_validation(self, model):
        with pytest.raises(ValueError):
            model.forward(np.zeros(4, dtype=int), np.zeros(5, dtype=int),
                          ALL_FP32)


class TestGradients:
    """Finite-difference checks of the hand-written backward pass."""

    @pytest.mark.parametrize("param", [
        "embed", "head", "final_norm",
        "l0.wq", "l0.wk", "l0.wv", "l0.wo", "l0.norm1", "l0.norm2",
        "l0.wg", "l0.wu", "l0.wd", "l1.wq", "l1.wd",
    ])
    def test_gradcheck(self, model, batch, param):
        tokens, targets = batch
        _, grads = model.loss_and_grads(tokens, targets, ALL_FP32)
        p = model.params[param]
        # str hash() is salted per process (PYTHONHASHSEED), which made
        # the checked indices — and occasional tolerance misses — flaky.
        rng = np.random.default_rng(zlib.crc32(param.encode()))
        flat = p.reshape(-1)
        # Check a few random entries with central differences.
        eps = 2e-3
        checked = 0
        for idx in rng.choice(flat.size, size=min(4, flat.size),
                              replace=False):
            orig = flat[idx]
            flat[idx] = orig + eps
            lp, _ = model.forward(tokens, targets, ALL_FP32)
            flat[idx] = orig - eps
            lm, _ = model.forward(tokens, targets, ALL_FP32)
            flat[idx] = orig
            fd = (lp - lm) / (2 * eps)
            an = grads[param].reshape(-1)[idx]
            if abs(fd) < 1e-5 and abs(an) < 1e-5:
                continue
            assert an == pytest.approx(fd, rel=0.08, abs=2e-4), param
            checked += 1
        # At least one meaningful entry compared per parameter tested
        # (embedding rows for absent tokens legitimately have zero grad).
        if param != "embed":
            assert checked >= 1

    def test_embed_grad_zero_for_absent_tokens(self, model, batch):
        tokens, targets = batch
        _, grads = model.loss_and_grads(tokens, targets, ALL_FP32)
        absent = [t for t in range(model.cfg.vocab)
                  if t not in set(tokens.tolist())]
        assert np.all(grads["embed"][absent] == 0)

    def test_grads_cover_all_params(self, model, batch):
        _, grads = model.loss_and_grads(*batch, ALL_FP32)
        assert grads.keys() == model.params.keys()


class TestTraining:
    def test_sgd_reduces_loss(self, batch):
        m = TinyTransformer.create(TinyConfig(), seed=5)
        tokens, targets = batch
        losses = []
        for _ in range(8):
            loss, grads = m.loss_and_grads(tokens, targets, ALL_FP32)
            losses.append(loss)
            m.apply_sgd(grads, lr=0.5)
        assert losses[-1] < losses[0] - 0.2

    def test_determinism(self, batch):
        a = TinyTransformer.create(TinyConfig(), seed=7)
        b = TinyTransformer.create(TinyConfig(), seed=7)
        la, ga = a.loss_and_grads(*batch, ALL_BF16)
        lb, gb = b.loss_and_grads(*batch, ALL_BF16)
        assert la == lb
        for k in ga:
            np.testing.assert_array_equal(ga[k], gb[k])
