"""Fault models, both injection paths, goodput, and the golden report.

Covers the `repro.faults` subsystem end to end: simulator duration
modifiers (including collective max-semantics and "faulted" tagging),
the declarative fault models and their CLI spec parser, injection into
the synthetic workload and into the lowered step graph, the goodput
comparison, and a byte-stable golden for ``repro faults --json``.

Regenerate the golden after an intentional schema change with::

    PYTHONPATH=src python tests/test_faults.py --regen
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.faults import (
    FAULT_PRESETS,
    CollectiveRetry,
    ComputeStraggler,
    DegradedLink,
    FaultPlan,
    HungRank,
    PeriodicJitter,
    apply_fault_plan,
    fault_from_dict,
    fault_preset,
    parse_fault_spec,
    run_goodput,
)
from repro.sim.collectives import DEFAULT_COLLECTIVE_TIMEOUT_SECONDS
from repro.hardware.cluster import grand_teton
from repro.model.config import LLAMA3_8B
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import faults_report, render_json
from repro.parallel.config import JobConfig, ParallelConfig
from repro.parallel.mesh import DeviceMesh
from repro.sim.engine import Simulator
from repro.train.lowering import StepOpKind
from repro.train.step import simulate_step

GOLDEN = Path(__file__).parent / "golden" / "faults_8gpu.json"

MESH_8 = DeviceMesh(ParallelConfig(tp=4, cp=2))


class TestDurationModifiers:
    def test_modifier_stretches_matching_run(self):
        sim = Simulator()
        sim.add_duration_modifier(
            lambda rank, stream, kind, name, d: d + 1.0 if rank == 1 else d)
        a = sim.run(0, "compute", 1.0, "op")
        b = sim.run(1, "compute", 1.0, "op")
        assert a.duration == 1.0 and b.duration == 2.0

    def test_faulted_tag_only_on_changed_events(self):
        sim = Simulator()
        sim.add_duration_modifier(
            lambda rank, stream, kind, name, d: d * 2 if rank == 1 else d)
        a = sim.run(0, "compute", 1.0, "op")
        b = sim.run(1, "compute", 1.0, "op")
        assert a.tags == () and b.tags == ("faulted",)

    def test_modifiers_chain_in_registration_order(self):
        sim = Simulator()
        sim.add_duration_modifier(lambda r, s, k, n, d: d + 1.0)
        sim.add_duration_modifier(lambda r, s, k, n, d: d * 2.0)
        assert sim.run(0, "compute", 1.0, "op").duration == 4.0

    def test_collective_takes_max_of_modified_durations(self):
        """One degraded participant slows the whole collective; only the
        perturbed rank is tagged."""
        sim = Simulator()
        sim.add_duration_modifier(
            lambda rank, stream, kind, name, d: d * 3 if rank == 1 else d)
        events = sim.run_collective([0, 1, 2], "compute", 0.5, "tp:ag")
        assert all(e.end == 1.5 for e in events.values())
        assert events[1].tags == ("faulted",)
        assert events[0].tags == () and events[2].tags == ()

    def test_negative_modified_duration_rejected(self):
        sim = Simulator()
        sim.add_duration_modifier(lambda r, s, k, n, d: d - 5.0)
        with pytest.raises(ValueError, match="negative"):
            sim.run(0, "compute", 1.0, "op")

    def test_explicit_tags_pass_through(self):
        sim = Simulator()
        e = sim.run(0, "compute", 1.0, "op", tags=("custom",))
        assert e.tags == ("custom",)


class TestFaultModels:
    def test_straggler_validation(self):
        with pytest.raises(ValueError):
            ComputeStraggler(rank=0, extra_seconds=0.0, scale=1.0)
        with pytest.raises(ValueError):
            ComputeStraggler(rank=-1)

    def test_link_needs_exactly_one_scope(self):
        with pytest.raises(ValueError):
            DegradedLink(dim="tp")
        with pytest.raises(ValueError):
            DegradedLink(dim="tp", group=0, rank=1)
        with pytest.raises(ValueError):
            DegradedLink(dim="nope", group=0)

    def test_link_group_resolves_mesh_ranks(self):
        fault = DegradedLink(dim="tp", group=1, scale=2.0)
        assert fault.affected_ranks(MESH_8) == frozenset({4, 5, 6, 7})

    def test_hung_rank_fires_once_capped_by_timeout(self):
        fault = HungRank(rank=0, hang_seconds=5.0, timeout_seconds=2.0)
        state = fault.fresh_state()
        assert fault.perturb(1.0, state) == 3.0  # min(5, 2) extra
        assert fault.perturb(1.0, state) == 1.0  # healthy afterwards

    def test_hung_rank_defaults_to_the_shared_watchdog_timeout(self):
        """``timeout_seconds=None`` means the collective watchdog default
        — the same constant the retry ladder's attempts time out at."""
        fault = HungRank(rank=0, hang_seconds=1e9)
        assert (fault.effective_timeout_seconds
                == DEFAULT_COLLECTIVE_TIMEOUT_SECONDS)
        assert fault.stall_seconds == DEFAULT_COLLECTIVE_TIMEOUT_SECONDS
        state = fault.fresh_state()
        assert fault.perturb(1.0, state) \
            == 1.0 + DEFAULT_COLLECTIVE_TIMEOUT_SECONDS
        # A hang shorter than the watchdog is not stretched to it.
        short = HungRank(rank=0, hang_seconds=0.25)
        assert short.stall_seconds == 0.25

    def test_periodic_jitter_hits_every_period(self):
        fault = PeriodicJitter(rank=0, period=2, extra_seconds=0.1)
        state = fault.fresh_state()
        hits = [fault.perturb(1.0, state) for _ in range(4)]
        assert hits == [1.1, 1.0, 1.1, 1.0]

    def test_collective_retry_heals_after_n(self):
        fault = CollectiveRetry(dim="tp", retries=2, extra_seconds=0.05)
        state = fault.fresh_state()
        assert fault.perturb(1.0, state) == 1.05
        assert fault.perturb(1.0, state) == 1.05
        assert fault.perturb(1.0, state) == 1.0

    def test_plan_validates_ranks_against_mesh(self):
        plan = FaultPlan((ComputeStraggler(rank=99),))
        with pytest.raises(ValueError, match="outside world"):
            plan.validate(MESH_8)

    def test_expected_detection_unambiguous_compute_culprit(self):
        plan = FaultPlan((ComputeStraggler(rank=3),
                          DegradedLink(dim="tp", group=0, scale=2.0)))
        assert plan.expected_detection() == (3, "compute")
        two = FaultPlan((ComputeStraggler(rank=3), ComputeStraggler(rank=4)))
        assert two.expected_detection() == (None, None)


class TestSpecParser:
    def test_round_trips_every_type(self):
        cases = {
            "straggler:rank=6,extra=0.5": ComputeStraggler(6, 0.5),
            "straggler:rank=2,scale=1.5,extra=0": ComputeStraggler(
                2, 0.0, 1.5),
            "link:dim=tp,group=0,scale=2.0": DegradedLink("tp", 2.0, 0),
            "link:dim=dp,rank=3,scale=1.5": DegradedLink(
                "dp", 1.5, rank=3),
            "hang:rank=2,seconds=5,timeout=2": HungRank(2, 5.0, 2.0),
            "jitter:rank=1,period=2,extra=0.05": PeriodicJitter(
                1, 2, 0.05),
            "retry:dim=cp,retries=2,extra=0.05": CollectiveRetry(
                "cp", 2, 0.05),
        }
        for spec, expected in cases.items():
            assert parse_fault_spec(spec) == expected

    @pytest.mark.parametrize("bad", [
        "bogus:rank=1",
        "straggler:wat=1",
        "straggler:rank",
        "straggler:rank=xx",
        "link:dim=tp",            # missing scope
        "hang:rank=1,seconds=-1",
    ])
    def test_malformed_specs_raise_value_error(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)

    @pytest.mark.parametrize("spec", [
        "straggler:rank=6,extra=0.5",
        "link:dim=tp,group=0,scale=2.0",
        "hang:rank=2,seconds=5,timeout=2",
        "hang:rank=2,seconds=5",        # default watchdog timeout
        "jitter:rank=1,period=2,extra=0.05",
        "retry:dim=cp,retries=2,extra=0.05",
    ])
    def test_spec_to_dict_round_trips(self, spec):
        """``parse -> to_dict -> fault_from_dict`` is the identity: the
        dicts in ``repro faults --json`` reports rebuild the exact fault,
        derived fields (e.g. ``stall_seconds``) notwithstanding."""
        fault = parse_fault_spec(spec)
        assert fault_from_dict(fault.to_dict()) == fault

    def test_fault_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            fault_from_dict({"kind": "gremlin", "rank": 0})


class TestFaultPresets:
    def test_straggler_default_matches_the_cli_scenario(self):
        """The preset is the former hard-coded ``repro faults`` default:
        a 25%-throttled GPU on the second-to-last rank."""
        plan = fault_preset("straggler-default", 8)
        assert plan.faults == (
            ComputeStraggler(rank=6, extra_seconds=0.0, scale=1.25),)

    def test_preset_scales_with_world_size(self):
        assert fault_preset("straggler-default", 32).faults[0].rank == 30
        assert fault_preset("straggler-default", 1).faults[0].rank == 0

    def test_registry_is_consistent(self):
        assert "straggler-default" in FAULT_PRESETS
        for name in FAULT_PRESETS:
            assert fault_preset(name, 8).faults

    def test_unknown_preset_and_bad_world_size_rejected(self):
        with pytest.raises(ValueError, match="unknown fault preset"):
            fault_preset("nope", 8)
        with pytest.raises(ValueError):
            fault_preset("straggler-default", 0)


class TestWorkloadInjection:
    def test_straggler_plan_equals_legacy_slowdown(self):
        """The declarative straggler must reproduce the slowdown= path's
        timeline exactly (same makespan, same per-rank compute)."""
        from repro.debug.workload import run_synthetic_workload

        legacy = run_synthetic_workload(MESH_8, slowdown={6: 0.5})
        plan = FaultPlan((ComputeStraggler(rank=6, extra_seconds=0.5),))
        faulted = run_synthetic_workload(MESH_8, faults=plan)
        assert faulted.makespan() == pytest.approx(legacy.makespan())
        for rank in range(8):
            assert faulted.busy_time(rank) == pytest.approx(
                legacy.busy_time(rank))
        assert any("faulted" in e.tags for e in faulted.events)

    def test_degraded_link_stretches_only_its_dim(self):
        from repro.debug.workload import run_synthetic_workload

        plan = FaultPlan((DegradedLink(dim="tp", group=0, scale=3.0),))
        healthy = run_synthetic_workload(MESH_8)
        faulted = run_synthetic_workload(MESH_8, faults=plan)

        def payload_seconds(sim, prefix):
            """Sum of per-instance payload times (min member duration),
            which excludes join-skew waiting."""
            instances = {}
            for e in sim.events:
                if e.kind == "comm" and e.name.startswith(prefix):
                    key = (e.name, e.end, e.group)
                    cur = instances.get(key)
                    instances[key] = (e.duration if cur is None
                                      else min(cur, e.duration))
            return sum(instances.values())

        assert payload_seconds(faulted, "tp:") > payload_seconds(healthy, "tp:")
        assert payload_seconds(faulted, "cp:") == pytest.approx(
            payload_seconds(healthy, "cp:"))


class TestStepGraphInjection:
    JOB = JobConfig(seq=8192, gbs=8, ngpu=8)
    PAR = ParallelConfig(tp=2, cp=2, pp=2, dp=1)

    def _graph(self):
        rep = simulate_step(LLAMA3_8B, self.PAR, self.JOB,
                            grand_teton(self.JOB.ngpu))
        return rep.execution.graph

    def test_straggler_scales_only_victim_stage_compute(self):
        graph = self._graph()
        mesh = DeviceMesh(self.PAR)
        victim = 6  # pp coordinate 1
        plan = FaultPlan((ComputeStraggler(rank=victim, extra_seconds=0.0,
                                           scale=2.0),))
        faulted, report = apply_fault_plan(graph, plan, mesh)
        by_uid = graph.by_uid()
        stage = mesh.coord_of(victim).pp
        compute_kinds = (StepOpKind.COMPUTE, StepOpKind.OPTIMIZER)
        for op in faulted.ops():
            old = by_uid[op.uid]
            if op.kind in compute_kinds and op.rank == stage:
                assert op.duration == pytest.approx(2 * old.duration)
                if old.duration > 0:
                    assert op.uid in report.faulted_uids
            else:
                assert op.duration == old.duration
        assert report.ops_faulted > 0
        assert report.extra_seconds > 0

    def test_input_graph_untouched_and_structure_preserved(self):
        graph = self._graph()
        plan = FaultPlan((ComputeStraggler(rank=0, extra_seconds=0.001),))
        before = [op.duration for op in graph.ops()]
        faulted, _ = apply_fault_plan(graph, plan, DeviceMesh(self.PAR))
        assert [op.duration for op in graph.ops()] == before
        assert [(op.uid, op.kind, op.deps) for op in faulted.ops()] == \
            [(op.uid, op.kind, op.deps) for op in graph.ops()]

    def test_link_fault_on_missing_dim_matches_nothing(self):
        graph = self._graph()
        plan = FaultPlan((DegradedLink(dim="dp", rank=0, scale=2.0),))
        _, report = apply_fault_plan(graph, plan, DeviceMesh(self.PAR))
        # dp=1 here: the graph's fsdp ops still match the dp prefixes.
        assert report.ops_faulted_per_fault == (report.ops_faulted,)

    def test_simulate_step_tags_and_counts_faulted_ops(self):
        metrics = MetricsRegistry()
        plan = FaultPlan((ComputeStraggler(rank=6, extra_seconds=0.0,
                                           scale=1.5),))
        rep = simulate_step(LLAMA3_8B, self.PAR, self.JOB,
                            grand_teton(self.JOB.ngpu),
                            metrics=metrics, fault_plan=plan)
        assert rep.fault_injection is not None
        tagged = [e for e in rep.run.sim.events if "faulted" in e.tags]
        assert len(tagged) == rep.fault_injection.ops_faulted
        counter = metrics.get("faults.injected_ops")
        assert sum(counter.values.values()) == len(tagged)

    def test_faulted_step_is_slower(self):
        healthy = simulate_step(LLAMA3_8B, self.PAR, self.JOB,
                                grand_teton(self.JOB.ngpu))
        plan = FaultPlan((ComputeStraggler(rank=6, extra_seconds=0.0,
                                           scale=1.5),))
        faulted = simulate_step(LLAMA3_8B, self.PAR, self.JOB,
                                grand_teton(self.JOB.ngpu),
                                fault_plan=plan)
        assert faulted.step_seconds > healthy.step_seconds


def _golden_goodput():
    """The CLI's default scenario: 8b on 8 GPUs, rank 6 throttled 25%."""
    job = JobConfig(seq=8192, gbs=8, ngpu=8)
    par = ParallelConfig(tp=2, cp=2, pp=2, dp=1)
    plan = FaultPlan((ComputeStraggler(rank=6, extra_seconds=0.0,
                                       scale=1.25),))
    gp = run_goodput(LLAMA3_8B, par, job, grand_teton(job.ngpu), plan=plan)
    return gp, par, job


def _golden_payload() -> str:
    gp, par, job = _golden_goodput()
    return render_json(faults_report(gp, par, job)) + "\n"


class TestGoodput:
    def test_goodput_below_one_and_inflation_above(self):
        gp, _, _ = _golden_goodput()
        assert 0 < gp.goodput_fraction < 1
        assert gp.step_time_inflation > 1
        assert gp.faulted.mfu < gp.healthy.mfu

    def test_detection_closes_the_loop(self):
        gp, _, _ = _golden_goodput()
        assert gp.detection is not None
        assert gp.detection.exact_hit
        assert gp.detection.attribution == "compute"

    def test_exposed_comm_delta_nonnegative_where_it_matters(self):
        gp, _, _ = _golden_goodput()
        delta = gp.exposed_comm_delta_seconds
        # The straggler's cost must surface somewhere on the timeline.
        assert sum(delta.values()) > 0

    def test_empty_plan_rejected(self):
        job = JobConfig(seq=8192, gbs=8, ngpu=8)
        par = ParallelConfig(tp=2, cp=2, pp=2, dp=1)
        with pytest.raises(ValueError, match="non-empty"):
            run_goodput(LLAMA3_8B, par, job, grand_teton(job.ngpu),
                        plan=FaultPlan(()))


class TestGoldenFaultsReport:
    def test_report_matches_golden_bytes(self):
        assert _golden_payload() == GOLDEN.read_text(encoding="utf-8"), (
            "faults report changed; if intentional, regenerate with "
            "`PYTHONPATH=src python tests/test_faults.py --regen`")

    def test_golden_schema_shape(self):
        rep = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert rep["schema"] == "repro.faults/v2"
        assert set(rep) >= {"parallel", "job", "plan", "faults",
                            "injection", "healthy", "faulted", "goodput",
                            "exposed_comm_delta_seconds", "detection"}
        assert rep["detection"]["exact_hit"] is True
        assert 0 < rep["goodput"]["fraction"] < 1

    def test_report_is_deterministic(self):
        assert _golden_payload() == _golden_payload()


class TestInjectionReportShape:
    def test_tags_by_uid_marks_every_faulted_op(self):
        job = JobConfig(seq=8192, gbs=8, ngpu=8)
        par = ParallelConfig(tp=2, cp=2, pp=2, dp=1)
        rep = simulate_step(LLAMA3_8B, par, job, grand_teton(job.ngpu))
        plan = FaultPlan((HungRank(rank=0, hang_seconds=0.3),))
        faulted, inj = apply_fault_plan(rep.execution.graph, plan,
                                        DeviceMesh(par))
        assert inj.ops_faulted == 1  # one-shot hang: exactly one op
        assert set(inj.tags_by_uid) == set(inj.faulted_uids)
        assert all(t == ("faulted",) for t in inj.tags_by_uid.values())
        assert inj.extra_seconds == pytest.approx(0.3)

    def test_dataclass_replace_keeps_frozen_ops(self):
        fault = ComputeStraggler(rank=1, extra_seconds=0.5)
        clone = dataclasses.replace(fault, rank=2)
        assert clone.rank == 2 and fault.rank == 1


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(_golden_payload(), encoding="utf-8")
        print(f"wrote {GOLDEN}")
    else:
        print(__doc__)
