"""Differential-oracle tests: AFAB degeneration at the nc < pp boundary,
the Section 3.1.3 ZeRO rule at bs == 2*pp, and CP oracle agreement for
causal and document masks."""

import pytest

from repro.hardware.cluster import grand_teton
from repro.parallel.config import JobConfig, ZeroStage
from repro.parallel.planner import plan_parallelism
from repro.model.config import LLAMA3_405B
from repro.pp.analysis import ScheduleShape
from repro.verify.invariants import check_zero_schedule
from repro.verify.oracles import (
    oracle_afab_degeneration,
    oracle_cp_attention,
    oracle_pp_numerics,
    run_default_oracles,
)


class TestAfabDegeneration:
    @pytest.mark.parametrize("pp,nc,nmb", [
        (4, 2, 8),    # nc < pp: must degenerate
        (4, 1, 3),
        (8, 2, 2),
        (3, 1, 7),
    ])
    def test_degenerates_below_boundary(self, pp, nc, nmb):
        result = oracle_afab_degeneration(
            ScheduleShape(pp=pp, v=2, nc=nc, nmb=nmb))
        assert result.ok, [v.message for v in result.violations]

    @pytest.mark.parametrize("pp,nc,nmb", [
        (4, 4, 8),    # nc == pp: original interleaved 1F1B
        (2, 4, 8),    # nc > pp: extra warm-up, still 1F1B family
        (1, 1, 5),
    ])
    def test_no_degeneration_at_or_above_boundary(self, pp, nc, nmb):
        result = oracle_afab_degeneration(
            ScheduleShape(pp=pp, v=2, nc=nc, nmb=nmb))
        assert result.ok, [v.message for v in result.violations]


class TestZeroModeBoundary:
    """Section 3.1.3: bs >= 2*pp selects ZeRO-1 + 1F1B, below it
    ZeRO-2 + AFAB — pinned exactly at the boundary."""

    def test_at_boundary_zero1_1f1b_is_legal(self):
        pp = 4
        assert check_zero_schedule(
            ZeroStage.ZERO_1, "1f1b", bs=2 * pp, pp=pp) == []

    def test_at_boundary_zero2_afab_is_violation(self):
        pp = 4
        violations = check_zero_schedule(
            ZeroStage.ZERO_2, "afab", bs=2 * pp, pp=pp)
        assert len(violations) == 2  # wrong mode AND wrong family

    def test_below_boundary_flips(self):
        pp = 4
        assert check_zero_schedule(
            ZeroStage.ZERO_2, "afab", bs=2 * pp - 1, pp=pp) == []
        violations = check_zero_schedule(
            ZeroStage.ZERO_1, "1f1b", bs=2 * pp - 1, pp=pp)
        assert {v.check for v in violations} == {"zero-schedule"}
        assert len(violations) == 2

    def test_flexible_counts_as_1f1b_family(self):
        assert check_zero_schedule(
            ZeroStage.ZERO_1, "flexible", bs=16, pp=4) == []

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            check_zero_schedule(ZeroStage.ZERO_1, "no-such-schedule",
                                bs=16, pp=4)

    def test_registered_kinds_resolve_by_family(self):
        # gpipe registered as AFAB-family: legal below the boundary,
        # flagged at it; zero-bubble rides the 1F1B rule.
        assert check_zero_schedule(
            ZeroStage.ZERO_2, "gpipe", bs=7, pp=4) == []
        assert check_zero_schedule(
            ZeroStage.ZERO_1, "zero-bubble", bs=16, pp=4) == []
        violations = check_zero_schedule(
            ZeroStage.ZERO_2, "gpipe", bs=16, pp=4)
        assert {v.check for v in violations} == {"zero-schedule"}

    def test_planner_agrees_with_checker(self):
        """The Section 5 planner's chosen (zero, schedule) never violates
        the independently-implemented rule."""
        cluster = grand_teton(16384)
        for job in (JobConfig(seq=8192, gbs=2048, ngpu=16384),
                    JobConfig(seq=131072, gbs=128, ngpu=16384)):
            plan = plan_parallelism(LLAMA3_405B, job, cluster)
            bs = plan.bs
            assert check_zero_schedule(
                plan.parallel.zero, plan.schedule, bs,
                plan.parallel.pp) == []


class TestCpOracle:
    def test_causal_mask_agrees(self):
        for cp in (1, 2, 4, 8):
            result = oracle_cp_attention(seq=64, cp=cp)
            assert result.ok, [v.message for v in result.violations]

    def test_document_mask_agrees(self):
        """Block-causal masks, including documents crossing chunk
        boundaries, agree bitwise with the unsharded reference."""
        for doc_lens in ((17, 30, 17), (5, 5, 5, 49), (64,)):
            result = oracle_cp_attention(seq=64, cp=4, doc_lens=doc_lens)
            assert result.ok, [v.message for v in result.violations]

    def test_uneven_chunks_agree(self):
        # seq not divisible by 2*cp: earlier chunks one token longer.
        result = oracle_cp_attention(seq=61, cp=4)
        assert result.ok, [v.message for v in result.violations]

    def test_detects_corrupted_sharded_output(self, monkeypatch):
        """Sanity: the oracle is not vacuous — a perturbed sharded
        output is reported, attributed to the owning CP ranks."""
        import repro.verify.oracles as oracles_mod
        from repro.cp.allgather import allgather_cp_attention as real

        def corrupted(q, k, v, cp, batch=None, **kwargs):
            out = real(q, k, v, cp, batch=batch, **kwargs)
            bad = out.out.copy()
            bad[-1] += 1e-6  # flip the tail chunk of rank 0
            return type(out)(out=bad, lse=out.lse, per_rank=out.per_rank)

        monkeypatch.setattr(oracles_mod, "allgather_cp_attention",
                            corrupted)
        result = oracle_cp_attention(seq=32, cp=2)
        assert not result.ok
        violation = result.violations[0]
        assert violation.check == "cp-attention"
        assert violation.context["ranks"] == [0]  # row 31 = rank 0's tail


class TestPpNumericsOracle:
    @pytest.mark.parametrize("pp,v,nc,nmb", [
        (2, 1, 2, 4),
        (2, 2, 2, 4),   # interleaved
        (4, 1, 2, 4),   # degenerate AFAB
    ])
    def test_order_matched_fp32_bitwise(self, pp, v, nc, nmb):
        result = oracle_pp_numerics(
            ScheduleShape(pp=pp, v=v, nc=nc, nmb=nmb))
        assert result.ok, [v.message for v in result.violations]

    def test_detects_order_mismatch(self, monkeypatch):
        """Sanity: accumulating in a different order than the schedule
        imposes is flagged (BF16 accumulation makes order visible)."""
        import repro.verify.oracles as oracles_mod
        from repro.numerics.parallel_emul import pp_backward_order

        def reversed_order(schedule, ppr, virtual_stage=0):
            return pp_backward_order(
                schedule, ppr, virtual_stage)[::-1]

        monkeypatch.setattr(oracles_mod, "pp_backward_order",
                            reversed_order)
        from repro.numerics.precision import ALL_BF16

        result = oracle_pp_numerics(
            ScheduleShape(pp=2, v=1, nc=2, nmb=4), precision=ALL_BF16)
        assert not result.ok
        assert all(v.check == "pp-numerics" for v in result.violations)


class TestDefaultBattery:
    def test_all_green_and_json_able(self):
        import json

        results = run_default_oracles()
        assert results and all(r.ok for r in results)
        json.dumps([r.to_dict() for r in results])

    def test_battery_is_deterministic(self):
        a = run_default_oracles(seed=3)
        b = run_default_oracles(seed=3)
        assert [r.to_dict() for r in a] == [r.to_dict() for r in b]
