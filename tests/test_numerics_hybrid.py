"""Tests for the hybrid DP x PP real-numerics trainer."""

import numpy as np
import pytest

from repro.numerics.compare import bitwise_equal
from repro.numerics.hybrid import HybridDpPpTrainer
from repro.numerics.parallel_emul import grads_in_order
from repro.numerics.precision import (
    ALL_BF16,
    ALL_FP32,
    PRODUCTION,
    accumulate,
)
from repro.numerics.transformer import TinyConfig, TinyTransformer
from repro.pp.analysis import ScheduleShape
from repro.pp.schedule import build_flexible_schedule

CFG = TinyConfig(n_layers=4)
SHAPE = ScheduleShape(pp=2, v=2, nc=2, nmb=4)
DP = 2


def _trainer(precision=ALL_BF16, seed=1):
    return HybridDpPpTrainer(
        model=TinyTransformer.create(CFG, seed=seed),
        schedule=build_flexible_schedule(SHAPE),
        dp=DP,
        precision=precision,
    )


def _data(seed=2, seq=12):
    rng = np.random.default_rng(seed)
    batch = DP * SHAPE.nmb
    return (rng.integers(0, CFG.vocab, (batch, seq)),
            rng.integers(0, CFG.vocab, (batch, seq)))


class TestBitwiseContract:
    @pytest.mark.parametrize("precision", [ALL_FP32, ALL_BF16, PRODUCTION],
                             ids=["fp32", "bf16", "production"])
    def test_matches_order_emulated_monolithic(self, precision):
        """dp x pp == monolithic with matched per-group accumulation
        then ring DP reduction — bitwise."""
        tokens, targets = _data()
        trainer = _trainer(precision)
        reference = TinyTransformer.create(CFG, seed=1)
        _, hybrid_grads = trainer.train_step(tokens, targets, lr=0.0)

        nmb = SHAPE.nmb
        group_grads = [
            grads_in_order(reference, tokens[g * nmb:(g + 1) * nmb],
                           targets[g * nmb:(g + 1) * nmb],
                           range(nmb), precision)
            for g in range(DP)
        ]
        expected = group_grads[0]
        for g in group_grads[1:]:
            expected = {
                k: accumulate(expected[k], g[k], precision.grad_reduce)
                for k in expected
            }
        assert bitwise_equal(hybrid_grads, expected)

    def test_lr_zero_leaves_params_unchanged(self):
        tokens, targets = _data()
        trainer = _trainer()
        before = {k: v.copy() for k, v in trainer.model.params.items()}
        trainer.train_step(tokens, targets, lr=0.0)
        for k in before:
            np.testing.assert_array_equal(trainer.model.params[k],
                                          before[k])


class TestTraining:
    def test_converges_under_production_precision(self):
        tokens, targets = _data(seed=5)
        trainer = _trainer(PRODUCTION, seed=3)
        losses = trainer.train(tokens, targets, steps=6, lr=0.3)
        assert losses[-1] < losses[0] - 0.15

    def test_global_batch_validated(self):
        trainer = _trainer()
        tokens, targets = _data()
        with pytest.raises(ValueError):
            trainer.train_step(tokens[:-1], targets[:-1])

    def test_dp_validated(self):
        with pytest.raises(ValueError):
            HybridDpPpTrainer(
                model=TinyTransformer.create(CFG, seed=1),
                schedule=build_flexible_schedule(SHAPE),
                dp=0, precision=ALL_FP32,
            )

    def test_global_batch_property(self):
        assert _trainer().global_batch == DP * SHAPE.nmb
