"""Tests for document-structured synthetic batches."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.documents import (
    DocumentBatch,
    doc_ids_from_lengths,
    eos_positions,
    make_batch,
    sample_document_lengths,
)


class TestDocumentBatch:
    def test_doc_ids(self):
        b = DocumentBatch(seq=6, doc_lens=(2, 4))
        assert b.doc_ids.tolist() == [0, 0, 1, 1, 1, 1]

    def test_eos_positions(self):
        b = DocumentBatch(seq=6, doc_lens=(2, 4))
        assert b.eos == [1, 5]

    def test_attended_per_row(self):
        b = DocumentBatch(seq=5, doc_lens=(2, 3))
        assert b.attended_per_row().tolist() == [1, 2, 1, 2, 3]

    def test_single_document_is_causal(self):
        b = DocumentBatch(seq=4, doc_lens=(4,))
        assert b.attended_per_row().tolist() == [1, 2, 3, 4]

    def test_validation(self):
        with pytest.raises(ValueError):
            DocumentBatch(seq=5, doc_lens=(2, 2))
        with pytest.raises(ValueError):
            DocumentBatch(seq=2, doc_lens=(2, 0))


class TestSampling:
    def test_lengths_partition_sequence(self):
        rng = np.random.default_rng(0)
        lens = sample_document_lengths(8192, 1024.0, rng)
        assert sum(lens) == 8192
        assert all(l > 0 for l in lens)

    def test_mean_roughly_controlled(self):
        rng = np.random.default_rng(1)
        all_lens = []
        for _ in range(50):
            all_lens += sample_document_lengths(8192, 1024.0, rng)
        mean = np.mean(all_lens)
        assert 600 < mean < 1600

    def test_full_sequence_probability(self):
        rng = np.random.default_rng(2)
        full = sum(
            sample_document_lengths(1024, 128.0, rng, p_full_sequence=1.0)
            == [1024]
            for _ in range(10)
        )
        assert full == 10

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_document_lengths(0, 100.0, rng)
        with pytest.raises(ValueError):
            sample_document_lengths(100, 8.0, rng)  # mean <= min_doc_len
        with pytest.raises(ValueError):
            sample_document_lengths(100, 50.0, rng, p_full_sequence=2.0)

    @settings(max_examples=30, deadline=None)
    @given(
        seq=st.integers(min_value=64, max_value=4096),
        mean=st.floats(min_value=20.0, max_value=500.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_partition_property(self, seq, mean, seed):
        lens = sample_document_lengths(seq, mean,
                                       np.random.default_rng(seed))
        assert sum(lens) == seq
        assert min(lens) > 0


class TestHelpers:
    def test_doc_ids_from_lengths(self):
        assert doc_ids_from_lengths([1, 2]).tolist() == [0, 1, 1]
        with pytest.raises(ValueError):
            doc_ids_from_lengths([])

    def test_eos_positions_helper(self):
        assert eos_positions([3, 2, 1]) == [2, 4, 5]

    def test_make_batch_defaults(self):
        b = make_batch(128)
        assert b.doc_lens == (128,)
        b2 = make_batch(128, mean_doc_len=32.0)
        assert sum(b2.doc_lens) == 128
