"""Tests for the context-parallel transformer layer with real numerics."""

import numpy as np
import pytest

from repro.data.documents import make_batch
from repro.numerics.cp_layer import cp_layer_backward, cp_layer_forward
from repro.numerics.precision import ALL_BF16, ALL_FP32
from repro.numerics.transformer import (
    TinyConfig,
    TinyTransformer,
    layer_backward,
    layer_forward,
)

CFG = TinyConfig()
MODEL = TinyTransformer.create(CFG, seed=1)
RNG = np.random.default_rng(8)
SEQ = 32
X = RNG.standard_normal((SEQ, CFG.dim)).astype(np.float32)
DX = RNG.standard_normal((SEQ, CFG.dim)).astype(np.float32)


def _mono(precision=ALL_FP32):
    out, cache = layer_forward(CFG, MODEL.params, 0, X, precision)
    dx, grads = layer_backward(CFG, MODEL.params, 0, DX, cache, precision)
    return out, dx, grads


def _cp(cp, precision=ALL_FP32, batch=None):
    out, caches = cp_layer_forward(CFG, MODEL.params, 0, X, cp, precision,
                                   batch=batch)
    dx, grads = cp_layer_backward(CFG, MODEL.params, 0, DX, caches, cp,
                                  precision)
    return out, dx, grads


class TestForward:
    @pytest.mark.parametrize("cp", [1, 2, 4])
    @pytest.mark.parametrize("precision", [ALL_FP32, ALL_BF16],
                             ids=["fp32", "bf16"])
    def test_forward_bitwise_vs_monolithic(self, cp, precision):
        """All per-token work is reduction-free and the K/V all-gather is
        an exact row assembly: CP layer forward == monolithic bitwise."""
        mono_out, _ = layer_forward(CFG, MODEL.params, 0, X, precision)[0], None
        cp_out, _ = cp_layer_forward(CFG, MODEL.params, 0, X, cp, precision)
        assert np.array_equal(mono_out, cp_out)

    def test_document_mask_forward(self):
        batch = make_batch(SEQ, mean_doc_len=17.0,
                           rng=np.random.default_rng(3))
        # Monolithic layer uses a causal mask internally, so compare CP
        # degrees against each other under the doc mask.
        a, _ = cp_layer_forward(CFG, MODEL.params, 0, X, 1, ALL_FP32,
                                batch=batch)
        b, _ = cp_layer_forward(CFG, MODEL.params, 0, X, 4, ALL_FP32,
                                batch=batch)
        assert np.array_equal(a, b)


class TestBackward:
    def test_dx_bitwise_vs_cp1(self):
        """dx rows involve no cross-rank reduction before the K/V reduce;
        after identical reduced dK/dV... dx still passes through the
        reduced tensors, so compare CP degrees: cp=1 vs cp=4 differ only
        in the dK/dV reduction order."""
        _, dx1, _ = _cp(1)
        _, dx4, _ = _cp(4)
        np.testing.assert_allclose(dx4, dx1, rtol=1e-4, atol=1e-6)

    def test_cp1_matches_monolithic_grads(self):
        """With one rank there is no reduction: cp=1 must agree with the
        monolithic backward tightly."""
        _, mono_dx, mono_g = _mono()
        _, cp_dx, cp_g = _cp(1)
        np.testing.assert_allclose(cp_dx, mono_dx, rtol=1e-5, atol=1e-7)
        for name in mono_g:
            np.testing.assert_allclose(cp_g[name], mono_g[name],
                                       rtol=1e-4, atol=1e-6)

    def test_cp4_weight_grads_close_to_monolithic(self):
        _, _, mono_g = _mono()
        _, _, cp_g = _cp(4)
        for name in mono_g:
            np.testing.assert_allclose(cp_g[name], mono_g[name],
                                       rtol=1e-3, atol=1e-5), name

    def test_deterministic(self):
        a = _cp(4, ALL_BF16)
        b = _cp(4, ALL_BF16)
        assert np.array_equal(a[1], b[1])
        for k in a[2]:
            assert np.array_equal(a[2][k], b[2][k])

    def test_gradcheck_through_cp_layer(self):
        """Finite-difference check of the CP backward at cp=2 (fp32)."""
        cp = 2
        loss_grad = np.ones((SEQ, CFG.dim), dtype=np.float32) / X.size

        def loss():
            out, _ = cp_layer_forward(CFG, MODEL.params, 0, X, cp,
                                      ALL_FP32)
            return float(np.sum(out) / X.size)

        _, caches = cp_layer_forward(CFG, MODEL.params, 0, X, cp, ALL_FP32)
        _, grads = cp_layer_backward(CFG, MODEL.params, 0, loss_grad,
                                     caches, cp, ALL_FP32)
        rng = np.random.default_rng(11)
        for name in ("l0.wk", "l0.wv", "l0.wo"):
            flat = MODEL.params[name].reshape(-1)
            idx = int(rng.integers(0, flat.size))
            eps = 2e-3
            orig = flat[idx]
            flat[idx] = orig + eps
            lp = loss()
            flat[idx] = orig - eps
            lm = loss()
            flat[idx] = orig
            fd = (lp - lm) / (2 * eps)
            an = grads[name].reshape(-1)[idx]
            if abs(fd) > 1e-6:
                assert an == pytest.approx(fd, rel=0.05, abs=1e-5), name
