"""Tests for the Section 6.2 methodology: parallel accumulation orders,
bitwise baselines, and FP32 gradient accumulation."""

import numpy as np
import pytest

from repro.numerics.compare import (
    bitwise_equal,
    loss_divergence,
    max_abs_diff,
    relative_grad_gap,
)
from repro.numerics.parallel_emul import (
    dp_sharded_grads,
    grads_in_order,
    pp_backward_order,
    pp_microbatch_grads,
    tp_emulated_sequential_matmul,
    tp_row_parallel_matmul,
    train_loss_curve,
)
from repro.numerics.precision import ALL_BF16, ALL_FP32, PRODUCTION, matmul
from repro.numerics.transformer import TinyConfig, TinyTransformer
from repro.pp.analysis import ScheduleShape
from repro.pp.schedule import build_flexible_schedule

CFG = TinyConfig()


@pytest.fixture(scope="module")
def model():
    return TinyTransformer.create(CFG, seed=1)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(2)
    return (rng.integers(0, CFG.vocab, (8, 16)),
            rng.integers(0, CFG.vocab, (8, 16)))


class TestPPOrderEmulation:
    SCHED = build_flexible_schedule(ScheduleShape(pp=4, v=2, nc=4, nmb=8))

    def test_emulated_order_matches_pp_bitwise(self, model, data):
        """The paper's discriminator: a sequential run forced into the PP
        accumulation order matches the PP code path bit for bit."""
        order = pp_backward_order(self.SCHED, ppr=1, virtual_stage=0)
        pp = pp_microbatch_grads(model, *data, self.SCHED, ppr=1,
                                 precision=ALL_BF16)
        emul = grads_in_order(model, *data, order, ALL_BF16)
        assert bitwise_equal(pp, emul)

    def test_backward_order_has_all_microbatches(self):
        order = pp_backward_order(self.SCHED, ppr=0, virtual_stage=1)
        assert sorted(order) == list(range(8))

    def test_requires_enough_sequences(self, model, data):
        with pytest.raises(ValueError):
            pp_microbatch_grads(model, data[0][:4], data[1][:4],
                                self.SCHED, ppr=0, precision=ALL_BF16)


class TestDPOrderEffects:
    def test_bf16_dp_diverges_from_naive_bitwise(self, model, data):
        naive = grads_in_order(model, *data, range(8), ALL_BF16)
        dp = dp_sharded_grads(model, *data, dp=4, precision=ALL_BF16)
        assert not bitwise_equal(naive, dp)
        assert max_abs_diff(naive, dp) > 0

    def test_ring_and_tree_reduce_differ_in_bf16(self, model, data):
        ring = dp_sharded_grads(model, *data, dp=4, precision=ALL_BF16)
        tree = dp_sharded_grads(model, *data, dp=4, precision=ALL_BF16,
                                tree_reduce=True)
        assert not bitwise_equal(ring, tree)

    def test_fp32_accumulation_closes_the_gap(self, model, data):
        """The production fix (Section 6.2): FP32 gradient accumulation
        shrinks the order-dependence by orders of magnitude."""
        gap16 = relative_grad_gap(
            grads_in_order(model, *data, range(8), ALL_BF16),
            dp_sharded_grads(model, *data, dp=4, precision=ALL_BF16),
        )
        gap32 = relative_grad_gap(
            grads_in_order(model, *data, range(8), PRODUCTION),
            dp_sharded_grads(model, *data, dp=4, precision=PRODUCTION),
        )
        assert gap32 < gap16 / 100

    def test_dp_must_divide_batch(self, model, data):
        with pytest.raises(ValueError):
            dp_sharded_grads(model, *data, dp=3, precision=ALL_BF16)


class TestTPOrderEffects:
    def test_tp_differs_from_fused_gemm_in_bf16(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((16, 32)).astype(np.float32)
        w = rng.standard_normal((32, 24)).astype(np.float32)
        fused = matmul(x, w, ALL_BF16)
        tp = tp_row_parallel_matmul(x, w, 4, ALL_BF16)
        assert not np.array_equal(fused, tp)

    def test_tp_matches_emulated_sequential_bitwise(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((16, 32)).astype(np.float32)
        w = rng.standard_normal((32, 24)).astype(np.float32)
        tp = tp_row_parallel_matmul(x, w, 4, ALL_BF16)
        emul = tp_emulated_sequential_matmul(x, w, 4, ALL_BF16)
        assert np.array_equal(tp, emul)

    def test_fp32_tp_nearly_exact(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((16, 32)).astype(np.float32)
        w = rng.standard_normal((32, 24)).astype(np.float32)
        fused = matmul(x, w, ALL_FP32)
        tp = tp_row_parallel_matmul(x, w, 4, ALL_FP32)
        np.testing.assert_allclose(tp, fused, rtol=1e-4, atol=1e-6)

    def test_inner_dim_divisibility(self):
        x = np.zeros((4, 30), dtype=np.float32)
        w = np.zeros((30, 8), dtype=np.float32)
        with pytest.raises(ValueError):
            tp_row_parallel_matmul(x, w, 4, ALL_BF16)


class TestLossCurves:
    def test_bf16_accum_drifts_from_fp32_accum(self, data):
        """Training-trajectory view of the same effect: BF16 gradient
        accumulation drifts away from the FP32-accumulation curve."""
        steps = 10
        ref = train_loss_curve(
            TinyTransformer.create(CFG, seed=9), *data, steps, PRODUCTION)
        drifted = train_loss_curve(
            TinyTransformer.create(CFG, seed=9), *data, steps, ALL_BF16)
        rep = loss_divergence(drifted, ref)
        assert rep.max_gap > 0
        # Both still train.
        assert ref[-1] < ref[0] and drifted[-1] < drifted[0]

    def test_divergence_report_validation(self):
        with pytest.raises(ValueError):
            loss_divergence([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            loss_divergence([], [])
